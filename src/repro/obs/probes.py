"""Per-component monitors: the probe network.

Each probe watches one hardware component (a link, a router, an NI kernel,
a DRAM controller, the fault manager) through **pull-only readers**: a
probe never sits on a hot path, never changes control flow, and is only
read when the :class:`~repro.obs.sampler.MetricsSampler` ticks.  Every
reader exposes one named metric; readers marked as *signals* additionally
feed a per-probe **capture ring buffer** that records value changes
(migScope-style), optionally gated by an armed trigger predicate — the
same discard-until-triggered semantics as :meth:`repro.sim.trace.Tracer.arm`.

Exactness contract (BUILDING.md "Observability"): systems built without
``SystemBuilder.observe`` instantiate none of this, and a probe's
tick-reachable entry points early-return on the cached ``enabled`` flag
before allocating anything (enforced statically by reprolint
``obs-hot-disabled``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple


class ObsError(ValueError):
    """Raised for invalid observability configuration."""


class CaptureRecord:
    """One entry of a probe's capture ring buffer."""

    __slots__ = ("cycle", "signal", "value", "prev")

    def __init__(self, cycle: int, signal: str, value: object,
                 prev: object = None) -> None:
        self.cycle = cycle
        self.signal = signal
        self.value = value
        self.prev = prev

    def as_dict(self) -> Dict[str, object]:
        return {"cycle": self.cycle, "signal": self.signal,
                "value": self.value, "prev": self.prev}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"CaptureRecord(cycle={self.cycle}, signal={self.signal!r}, "
                f"value={self.value!r}, prev={self.prev!r})")


class Probe:
    """Base monitor: named readers plus an armed change-capture ring.

    Subclasses register readers at construction via :meth:`_add_reader`;
    the sampler drives :meth:`sample` which reads every metric once and
    captures signal transitions.  ``enabled`` is the cached flag the
    ``obs-hot-disabled`` contract keys on: a disabled probe's sample path
    returns before touching anything.
    """

    kind = "probe"

    def __init__(self, name: str, capture_depth: int = 64) -> None:
        if capture_depth <= 0:
            raise ObsError(
                f"capture_depth must be positive, got {capture_depth}")
        self.name = name
        self.enabled = True
        self.capture = deque(maxlen=capture_depth)
        self._trigger: Optional[Callable[[CaptureRecord], bool]] = None
        #: True once the armed trigger fired (always True when disarmed).
        self.triggered = True
        #: (metric name, reader, is_signal) triples in registration order.
        self._readers: List[Tuple[str, Callable[[int], object], bool]] = []
        self._last: List[object] = []

    # ------------------------------------------------------------- wiring
    def _add_reader(self, metric: str, reader: Callable[[int], object],
                    signal: bool = True) -> None:
        """Register one named metric reader (construction time)."""
        self._readers.append((metric, reader, signal))
        self._last.append(None)

    @property
    def metric_names(self) -> List[str]:
        return [metric for metric, _reader, _signal in self._readers]

    @property
    def signal_names(self) -> List[str]:
        return [metric for metric, _reader, signal in self._readers if signal]

    # ------------------------------------------------------------ trigger
    def arm(self, predicate: Callable[[CaptureRecord], bool]) -> None:
        """Discard capture records until ``predicate(record)`` fires, then
        retain from that record (inclusive) onward."""
        self._trigger = predicate
        self.triggered = False

    def disarm(self) -> None:
        self._trigger = None
        self.triggered = True

    # ----------------------------------------------------------- sampling
    def sample(self, cycle: int, sink: List[List[object]]) -> None:
        """Read every metric once, appending to the sampler's columns.

        ``sink`` holds one column list per reader, in registration order.
        Signal readers whose value changed since the previous sample also
        push a :class:`CaptureRecord` (subject to the armed trigger).
        """
        if not self.enabled:
            return
        readers = self._readers
        last = self._last
        for index in range(len(readers)):
            metric, reader, is_signal = readers[index]
            value = reader(cycle)
            sink[index].append(value)
            if is_signal and value != last[index]:
                self._capture(cycle, metric, value, last[index])
                last[index] = value

    def _capture(self, cycle: int, signal: str, value: object,
                 prev: object) -> None:
        record = CaptureRecord(cycle, signal, value, prev)
        if not self.triggered:
            if not self._trigger(record):
                return
            self.triggered = True
        self.capture.append(record)

    # ------------------------------------------------------------- export
    def captures(self) -> List[Dict[str, object]]:
        """The retained capture records, oldest first, as plain dicts."""
        return [record.as_dict() for record in self.capture]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"{type(self).__name__}({self.name!r}, "
                f"metrics={len(self._readers)}, "
                f"captured={len(self.capture)})")


class LinkProbe(Probe):
    """Utilisation and occupancy of one network link."""

    kind = "link"

    def __init__(self, link, capture_depth: int = 64) -> None:
        super().__init__(f"link.{link.name}", capture_depth)
        self._link = link
        self._add_reader("occupancy", self._read_occupancy, signal=True)
        self._add_reader("busy", self._read_busy, signal=True)
        self._add_reader("flits_carried", self._read_flits, signal=False)
        self._add_reader("rate", self._read_rate, signal=False)

    def _read_occupancy(self, cycle: int) -> int:
        if not self.enabled:
            return 0
        return self._link.occupancy

    def _read_busy(self, cycle: int) -> int:
        if not self.enabled:
            return 0
        return 1 if self._link.busy else 0

    def _read_flits(self, cycle: int) -> int:
        if not self.enabled:
            return 0
        return self._link.flits_carried

    def _read_rate(self, cycle: int) -> float:
        if not self.enabled:
            return 0.0
        meter = self._link.meter
        if meter is None:
            return 0.0
        return meter.rate(cycle)


class RouterProbe(Probe):
    """Input-FIFO occupancy and forwarded-flit totals of one router."""

    kind = "router"

    def __init__(self, router, capture_depth: int = 64) -> None:
        super().__init__(f"router.{router.name}", capture_depth)
        self._router = router
        for port in range(router.num_ports):
            self._add_reader(f"in{port}.gt_depth",
                             self._depth_reader(port, gt=True), signal=True)
            self._add_reader(f"in{port}.be_depth",
                             self._depth_reader(port, gt=False), signal=True)
        stats = router.stats
        self._ctr_gt_out = stats.counter("gt_flits_out")
        self._ctr_be_out = stats.counter("be_flits_out")
        self._add_reader("gt_flits_out", self._read_gt_out, signal=False)
        self._add_reader("be_flits_out", self._read_be_out, signal=False)

    def _depth_reader(self, port: int, gt: bool) -> Callable[[int], int]:
        def read(cycle: int) -> int:
            if not self.enabled:
                return 0
            depth = self._router.input_fill(port, gt=gt)
            return depth
        return read

    def _read_gt_out(self, cycle: int) -> int:
        if not self.enabled:
            return 0
        return self._ctr_gt_out.value

    def _read_be_out(self, cycle: int) -> int:
        if not self.enabled:
            return 0
        return self._ctr_be_out.value


class NIProbe(Probe):
    """Slot-ownership activity and channel-FIFO fills of one NI kernel."""

    kind = "ni"

    def __init__(self, ni_name: str, kernel, capture_depth: int = 64) -> None:
        super().__init__(f"ni.{ni_name}", capture_depth)
        self._kernel = kernel
        self._add_reader("slot_owner", self._read_slot_owner, signal=True)
        for index in range(len(kernel.channels)):
            self._add_reader(f"ch{index}.src_fill",
                             self._fill_reader(index, source=True),
                             signal=True)
            self._add_reader(f"ch{index}.dst_fill",
                             self._fill_reader(index, source=False),
                             signal=True)
        stats = kernel.stats
        self._ctr_words_sent = stats.counter("words_sent")
        self._ctr_words_received = stats.counter("words_received")
        self._ctr_gt_sent = stats.counter("gt_flits_sent")
        self._ctr_be_sent = stats.counter("be_flits_sent")
        self._add_reader("words_sent", self._read_words_sent, signal=False)
        self._add_reader("words_received", self._read_words_received,
                         signal=False)
        self._add_reader("gt_flits_sent", self._read_gt_sent, signal=False)
        self._add_reader("be_flits_sent", self._read_be_sent, signal=False)

    def _read_slot_owner(self, cycle: int) -> int:
        """The channel owning the current TDMA slot (-1 when unreserved)."""
        if not self.enabled:
            return -1
        kernel = self._kernel
        owner = kernel.slot_table.owner(cycle % kernel.num_slots)
        return -1 if owner is None else int(owner)

    def _fill_reader(self, index: int, source: bool) -> Callable[[int], int]:
        def read(cycle: int) -> int:
            if not self.enabled:
                return 0
            channel = self._kernel.channels[index]
            queue = channel.source_queue if source else channel.dest_queue
            return queue.total_fill
        return read

    def _read_words_sent(self, cycle: int) -> int:
        if not self.enabled:
            return 0
        return self._ctr_words_sent.value

    def _read_words_received(self, cycle: int) -> int:
        if not self.enabled:
            return 0
        return self._ctr_words_received.value

    def _read_gt_sent(self, cycle: int) -> int:
        if not self.enabled:
            return 0
        return self._ctr_gt_sent.value

    def _read_be_sent(self, cycle: int) -> int:
        if not self.enabled:
            return 0
        return self._ctr_be_sent.value


class DramProbe(Probe):
    """Per-bank open-row and queue-backlog state of one DRAM controller."""

    kind = "dram"

    def __init__(self, memory_name: str, controller,
                 capture_depth: int = 64) -> None:
        super().__init__(f"dram.{memory_name}", capture_depth)
        self._controller = controller
        for bank in range(len(controller.banks)):
            self._add_reader(f"bank{bank}.open_row",
                             self._row_reader(bank), signal=True)
            self._add_reader(f"bank{bank}.queue",
                             self._queue_reader(bank), signal=True)

    def _row_reader(self, bank: int) -> Callable[[int], int]:
        def read(cycle: int) -> int:
            if not self.enabled:
                return -1
            row = self._controller.banks[bank].open_row
            return -1 if row is None else row
        return read

    def _queue_reader(self, bank: int) -> Callable[[int], int]:
        def read(cycle: int) -> int:
            if not self.enabled:
                return 0
            return self._controller.queue_depth(bank)
        return read


class FaultProbe(Probe):
    """Event-driven capture of fault activity (no periodic readers).

    Bound to a :class:`~repro.faults.manager.FaultManager` via its
    listener hook; every fault application (link down, repair, transient
    window start/end) lands in the capture ring as it happens.
    """

    kind = "faults"

    def __init__(self, capture_depth: int = 64) -> None:
        super().__init__("faults", capture_depth)

    def on_fault(self, cycle: int, kind: str,
                 details: Dict[str, object]) -> None:
        if not self.enabled:
            return
        self._capture(cycle, kind, details, None)
