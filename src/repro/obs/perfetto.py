"""Chrome/Perfetto ``trace_event`` export of packet lifetimes.

Reconstructs inject → route → deliver spans from a traced run
(``SystemBuilder.trace``): each packet id becomes one timeline with a
complete-event span from ``packet_formed`` to ``packet_delivered`` and a
thread-scoped instant per router ``forward`` hop; every other trace kind
(poisoned packets, discarded messages, register writes, ...) lands as an
instant on a shared "events" track.  Load the JSON in ``ui.perfetto.dev``
or ``chrome://tracing``.

Timestamps are microseconds (the trace_event convention), converted from
the simulator's picosecond timeline; the output is a pure function of the
input events, so golden tests can pin a fingerprint of it.
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, List, Union

_PS_PER_US = 1_000_000

#: The shared track for non-packet events.
_EVENTS_TID = 0


def _us(time_ps: int) -> float:
    return time_ps / _PS_PER_US


def trace_to_perfetto(events: Iterable) -> Dict[str, object]:
    """Build a ``{"traceEvents": [...]}`` dict from recorded trace events.

    Packets are identified by the ``packet=`` detail carried by the
    kernel's ``packet_formed`` / ``packet_delivered`` records and the
    router ``forward`` records; events without a packet id are exported as
    instants.  Undelivered packets (still in flight, or lost to a fault)
    are marked with an ``in flight`` instant instead of a span.

    Packet ids are renumbered to run-local ordinals (first appearance in
    the event stream): the simulator's ids come from a process-global
    counter, so exporting them raw would make the output depend on what
    else ran in the process instead of only on ``events``.
    """
    ordinals: Dict[int, int] = {}
    packets: Dict[int, Dict[str, object]] = {}
    others: List[object] = []
    for event in events:
        packet_id = event.details.get("packet")
        if packet_id is not None:
            packet_id = ordinals.setdefault(packet_id, len(ordinals))
        if event.kind == "packet_formed" and packet_id is not None:
            entry = packets.setdefault(packet_id, {"hops": []})
            entry["formed_ps"] = event.time_ps
            entry["source"] = event.source
            entry["gt"] = bool(event.details.get("gt", False))
            entry["words"] = event.details.get("words", 0)
        elif event.kind == "packet_delivered" and packet_id is not None:
            entry = packets.setdefault(packet_id, {"hops": []})
            entry["delivered_ps"] = event.time_ps
            entry["sink"] = event.source
        elif event.kind == "forward" and packet_id is not None:
            entry = packets.setdefault(packet_id, {"hops": []})
            entry["hops"].append((event.time_ps, event.source,
                                  event.details.get("output")))
        else:
            others.append(event)

    trace_events: List[Dict[str, object]] = [
        {"ph": "M", "name": "process_name", "pid": 1,
         "args": {"name": "repro-noc"}},
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": _EVENTS_TID,
         "args": {"name": "events"}},
    ]
    for packet_id in sorted(packets):
        entry = packets[packet_id]
        tid = packet_id + 1  # tid 0 is the shared events track
        traffic = "gt" if entry.get("gt") else "be"
        formed = entry.get("formed_ps")
        delivered = entry.get("delivered_ps")
        trace_events.append(
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
             "args": {"name": f"packet {packet_id}"}})
        if formed is not None and delivered is not None:
            trace_events.append({
                "name": f"packet {packet_id} ({traffic})", "cat": "packet",
                "ph": "X", "pid": 1, "tid": tid, "ts": _us(formed),
                "dur": _us(delivered - formed),
                "args": {"source": entry.get("source"),
                         "sink": entry.get("sink"),
                         "words": entry.get("words"),
                         "hops": len(entry["hops"])}})
        elif formed is not None:
            trace_events.append({
                "name": f"packet {packet_id} in flight", "cat": "packet",
                "ph": "i", "s": "t", "pid": 1, "tid": tid,
                "ts": _us(formed),
                "args": {"source": entry.get("source"),
                         "words": entry.get("words")}})
        for hop_ps, router, output in entry["hops"]:
            trace_events.append({
                "name": f"{router} -> out{output}", "cat": "hop",
                "ph": "i", "s": "t", "pid": 1, "tid": tid,
                "ts": _us(hop_ps)})
    for event in others:
        details = {key: value for key, value in sorted(event.details.items())}
        if "packet" in details and details["packet"] in ordinals:
            details["packet"] = ordinals[details["packet"]]
        details["source"] = event.source
        trace_events.append({
            "name": event.kind, "cat": "event", "ph": "i", "s": "t",
            "pid": 1, "tid": _EVENTS_TID, "ts": _us(event.time_ps),
            "args": details})
    return {"traceEvents": trace_events, "displayTimeUnit": "ns"}


def write_perfetto(events: Iterable,
                   target: Union[str, IO[str]]) -> int:
    """Write the trace_event JSON; returns the number of trace events."""
    document = trace_to_perfetto(events)
    handle, owned = (target, False) if hasattr(target, "write") else (
        open(target, "w", encoding="utf-8"), True)
    try:
        json.dump(document, handle, sort_keys=True)
    finally:
        if owned:
            handle.close()
    return len(document["traceEvents"])
