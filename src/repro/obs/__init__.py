"""repro.obs — the observability plane.

A probe network of per-component monitors (links, routers, NI kernels,
DRAM banks, fault events), a deterministic metrics sampler clocked on the
flit clock, and timeline exporters (VCD waveforms, Chrome/Perfetto
trace_event JSON, JSON-lines capture dumps).  Attached declaratively via
:meth:`repro.api.builder.SystemBuilder.observe` and reached through
``System.obs`` / ``System.report()``.

Systems built without observers instantiate nothing from this package and
run byte-identically to a tree without it (the exactness contract,
BUILDING.md "Observability").
"""

from repro.obs.observatory import (
    OBS_TARGETS,
    Observatory,
    build_observatory,
)
from repro.obs.perfetto import trace_to_perfetto, write_perfetto
from repro.obs.probes import (
    CaptureRecord,
    DramProbe,
    FaultProbe,
    LinkProbe,
    NIProbe,
    ObsError,
    Probe,
    RouterProbe,
)
from repro.obs.sampler import MetricsSampler
from repro.obs.vcd import write_vcd

__all__ = [
    "OBS_TARGETS",
    "Observatory",
    "build_observatory",
    "CaptureRecord",
    "DramProbe",
    "FaultProbe",
    "LinkProbe",
    "NIProbe",
    "ObsError",
    "Probe",
    "RouterProbe",
    "MetricsSampler",
    "trace_to_perfetto",
    "write_perfetto",
    "write_vcd",
]
