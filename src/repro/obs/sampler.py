"""Deterministic metrics sampling on the flit clock.

The :class:`MetricsSampler` is a :class:`~repro.sim.clock.ClockedComponent`
registered on the flit clock *only when a system declares observers* — a
no-obs build instantiates nothing, so observability costs exactly nothing
(byte-identical runs, identical event counts).

Determinism is cycle-anchored: samples are taken whenever
``cycle % stride == 0``, a pure function of the cycle index, so the series
is identical across activity-driven vs always-tick engines.  Batched vs
unbatched equivalence is bought the same way fault events buy it: the
sampler owns a :class:`~repro.sim.batching.BurstBarrier` holding the next
sample cycle, and the NI kernels truncate bursts so nothing is in flight
anywhere on a path when a sample is read — every counter and queue fill at
a sample cycle equals the per-flit pipeline's value (PERFORMANCE.md
"Burst-granularity simulation", the same invariant the fault injector and
run boundaries rely on).

Memory is bounded: past ``series_cap`` retained samples the stride doubles
and rows not on the new stride are dropped (fixed-stride decimation), so a
million-cycle run keeps a uniform timeline at bounded resolution instead
of growing without limit.

Wake-protocol note: like the fault injector, sample points become due
through the passage of cycles alone — nothing calls ``notify_active()``
for them — so the sampler reports busy while enabled, keeping the flit
clock ticking.  It is quiescent by definition (pull-only reads), so
``run_until_idle`` still terminates when the workload drains.  Under tick
gating the sampler additionally reports the next on-stride cycle as its
``next_action_cycle`` horizon, so an otherwise-gated flit clock skips
straight from sample to sample instead of ticking the off-stride no-ops.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.probes import ObsError, Probe
from repro.sim.batching import FAR_FUTURE, BurstBarrier
from repro.sim.clock import ClockedComponent


class MetricsSampler(ClockedComponent):
    """Samples every probe's readers on a fixed cycle stride."""

    def __init__(self, probes: List[Probe], period: int = 32,
                 series_cap: int = 1024) -> None:
        if period <= 0:
            raise ObsError(f"sampling period must be positive, got {period}")
        if series_cap < 2:
            raise ObsError(f"series_cap must be at least 2, got {series_cap}")
        self.probes = list(probes)
        #: Base sampling period in flit cycles (never changes).
        self.period = period
        #: Current stride: ``period`` until decimation doubles it.
        self.stride = period
        self.series_cap = series_cap
        self.enabled = True
        #: Next sample cycle, shared with every NI kernel: bursts truncate
        #: so nothing is in flight when a sample is read.
        self.barrier = BurstBarrier(0)
        #: Sample cycles, one entry per retained row.
        self.cycles: List[int] = []
        self.samples_taken = 0
        self.decimations = 0
        #: Flat metric names ("<probe>.<metric>") aligned with _columns.
        self._names: List[str] = []
        self._columns: List[List[object]] = []
        #: Per-probe views of the same column lists, in reader order.
        self._sinks: List[List[List[object]]] = []
        for probe in self.probes:
            sink: List[List[object]] = []
            for metric in probe.metric_names:
                column: List[object] = []
                self._names.append(f"{probe.name}.{metric}")
                self._columns.append(column)
                sink.append(column)
            self._sinks.append(sink)

    # ----------------------------------------------------------- clocking
    def tick(self, cycle: int) -> None:
        if not self.enabled:
            return
        if cycle % self.stride:
            return
        self.cycles.append(cycle)
        probes = self.probes
        sinks = self._sinks
        for index in range(len(probes)):
            probe = probes[index]
            if probe.enabled:
                probe.sample(cycle, sinks[index])
            else:
                for column in sinks[index]:
                    column.append(None)
        self.samples_taken += 1
        if len(self.cycles) > self.series_cap:
            self._decimate()
        stride = self.stride
        self.barrier.cycle = cycle - (cycle % stride) + stride

    def _decimate(self) -> None:
        """Double the stride, keeping only rows on the new grid."""
        stride = self.stride * 2
        self.stride = stride
        cycles = self.cycles
        keep = [row for row in range(len(cycles)) if cycles[row] % stride == 0]
        self.cycles = [cycles[row] for row in keep]
        for column in self._columns:
            kept = [column[row] for row in keep]
            del column[:]
            column.extend(kept)
        self.decimations += 1

    def is_idle(self) -> bool:
        # Sample points become due by cycle count alone; stay busy so the
        # clock keeps ticking (the fault-injector pattern).
        return not self.enabled

    def next_action_cycle(self, cycle: int) -> int:
        """Horizon: the next on-stride cycle (ticks between are no-ops)."""
        if not self.enabled:
            return FAR_FUTURE
        stride = self.stride
        return cycle - (cycle % stride) + stride

    def is_quiescent(self) -> bool:
        # Pull-only reads: sampling never keeps workload state in flight.
        return True

    # ------------------------------------------------------------- export
    @property
    def metric_names(self) -> List[str]:
        return list(self._names)

    def column(self, name: str) -> List[object]:
        """One metric's retained values (aligned with :attr:`cycles`)."""
        try:
            return list(self._columns[self._names.index(name)])
        except ValueError:
            known = ", ".join(self._names) or "<none>"
            raise ObsError(f"unknown metric {name!r} (known: {known})") \
                from None

    def series(self) -> Dict[str, object]:
        """The whole timeline: cycles row-index plus one column per metric."""
        return {
            "period": self.period,
            "stride": self.stride,
            "samples": self.samples_taken,
            "decimations": self.decimations,
            "cycles": list(self.cycles),
            "metrics": {name: list(column)
                        for name, column in zip(self._names, self._columns)},
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"MetricsSampler(period={self.period}, stride={self.stride}, "
                f"metrics={len(self._names)}, rows={len(self.cycles)})")
