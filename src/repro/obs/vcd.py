"""Value-change-dump (VCD) export of sampled signal series.

Turns the sampler's per-metric columns into a standard four-state VCD
waveform readable by GTKWave/Surfer: integer-valued series become binary
vectors, float-valued series become ``real`` variables, and ``None``
samples (a probe disabled mid-run) render as ``x``.  Timestamps are in
picoseconds (``$timescale 1ps``), computed as ``cycle * period_ps`` so the
waveform lines up with simulator time, and only changes are emitted —
exactly VCD's model, and exactly what the capture rings record.

The output is a pure function of the series (identifier codes are
assigned in series order, no wall-clock ``$date`` stamp), so golden tests
can pin a fingerprint of it.
"""

from __future__ import annotations

from typing import Dict, IO, List, Sequence, Union

#: Printable VCD identifier alphabet (the standard '!'..'~' range).
_ID_FIRST = 33
_ID_LAST = 126
_ID_SPAN = _ID_LAST - _ID_FIRST + 1


def vcd_identifier(index: int) -> str:
    """Deterministic short identifier code for the ``index``-th signal."""
    if index < 0:
        raise ValueError(f"signal index must be non-negative, got {index}")
    code = ""
    index += 1
    while index > 0:
        index -= 1
        code = chr(_ID_FIRST + index % _ID_SPAN) + code
        index //= _ID_SPAN
    return code


def _is_real_series(values: Sequence[object]) -> bool:
    return any(isinstance(value, float) for value in values)


def _vector_width(values: Sequence[object]) -> int:
    width = 1
    for value in values:
        if isinstance(value, int) and value > 0:
            width = max(width, value.bit_length())
    return width


def _format_value(value: object, real: bool, identifier: str) -> str:
    if real:
        if value is None:
            return f"r0 {identifier}"
        return f"r{float(value):.6g} {identifier}"
    if value is None:
        return f"bx {identifier}"
    value = int(value)
    if value < 0:
        # Two's complement is overkill for probe metrics; mark negatives
        # (e.g. slot_owner -1 = unreserved) as all-x for waveform clarity.
        return f"bx {identifier}"
    return f"b{value:b} {identifier}"


def write_vcd(target: Union[str, IO[str]], cycles: Sequence[int],
              series: Dict[str, Sequence[object]], *, period_ps: int = 1,
              module: str = "repro") -> int:
    """Write ``series`` (name -> values aligned with ``cycles``) as VCD.

    Returns the number of signals written.  Ragged columns (shorter than
    ``cycles``) simply stop changing at their last sample.
    """
    handle, owned = (target, False) if hasattr(target, "write") else (
        open(target, "w", encoding="utf-8"), True)
    try:
        return _write(handle, cycles, series, period_ps, module)
    finally:
        if owned:
            handle.close()


def _write(handle: IO[str], cycles: Sequence[int],
           series: Dict[str, Sequence[object]], period_ps: int,
           module: str) -> int:
    names = list(series)
    reals = {name: _is_real_series(series[name]) for name in names}
    idents = {name: vcd_identifier(index) for index, name in enumerate(names)}
    handle.write("$comment repro.obs deterministic waveform export $end\n")
    handle.write("$timescale 1ps $end\n")
    handle.write(f"$scope module {module} $end\n")
    for name in names:
        if reals[name]:
            handle.write(f"$var real 64 {idents[name]} {name} $end\n")
        else:
            width = _vector_width(series[name])
            handle.write(f"$var wire {width} {idents[name]} {name} $end\n")
    handle.write("$upscope $end\n")
    handle.write("$enddefinitions $end\n")

    last: Dict[str, object] = {}
    pending: List[str] = []
    for row, cycle in enumerate(cycles):
        for name in names:
            column = series[name]
            if row >= len(column):
                continue
            value = column[row]
            if name in last and last[name] == value:
                continue
            last[name] = value
            pending.append(_format_value(value, reals[name], idents[name]))
        if pending:
            handle.write(f"#{cycle * period_ps}\n")
            if row == 0:
                handle.write("$dumpvars\n")
                for line in pending:
                    handle.write(line + "\n")
                handle.write("$end\n")
            else:
                for line in pending:
                    handle.write(line + "\n")
            del pending[:]
    return len(names)
