"""Ready-made simulated systems (legacy wrappers).

The examples, tests and experiment benchmarks all need complete systems:
master IPs behind master shells, slave memories behind slave shells, NIs
attached to a NoC, connections opened and slots allocated.  Since the
declarative :mod:`repro.api` redesign these builders are thin wrappers over
the scenario registry (:mod:`repro.api.scenarios`) — one definition per
set-up, shared with the examples and the perf suite — kept for API
compatibility and convenient handle dataclasses:

* :func:`build_point_to_point` — one traffic-generating master talking to one
  memory slave over a small mesh (GT or BE);
* :func:`build_gt_be_mix` — several master/slave pairs whose traffic shares a
  single inter-router link, some guaranteed, some best effort (experiment
  E10);
* :func:`build_narrowcast` — one master whose shared address space is split
  over several memory slaves through a narrowcast shell (experiment E11);
* :func:`build_config_system` — a configuration module plus two data NIs,
  with the configuration connections bootstrapped exactly as in Figure 9 so
  connections can then be opened over the NoC itself (experiments E6/E7).

The ``run_until_done`` helpers now delegate to the engine-idleness-driven
:meth:`~repro.design.generator.SystemModel.run_until_idle` instead of
polling a done-flag in coarse cycle chunks; the ``step`` parameters remain
accepted for compatibility but are ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# Re-exported for backwards compatibility (historically defined here).
from repro.api import System, scenarios
from repro.api.builder import DEFAULT_PORT_CLOCK_MHZ
from repro.config.bootstrap import bootstrap_configuration_connection
from repro.config.connection import ConnectionSpec
from repro.config.manager import CentralizedConfigurationManager
from repro.core.shells.config_shell import ConfigShell, ConfigurationSlave
from repro.core.shells.master import MasterShell
from repro.core.shells.narrowcast import NarrowcastShell
from repro.core.shells.point_to_point import PointToPointShell
from repro.core.shells.slave import SlaveShell
from repro.design.generator import SystemModel
from repro.ip.master import TrafficGeneratorMaster
from repro.ip.slave import MemorySlave
from repro.ip.traffic import TrafficPattern

__all__ = [
    "DEFAULT_PORT_CLOCK_MHZ",
    "PointToPointTestbench",
    "TrafficPairHandle",
    "GtBeMixTestbench",
    "NarrowcastTestbench",
    "ConfigTestbench",
    "bootstrap_configuration_connection",
    "build_point_to_point",
    "build_gt_be_mix",
    "build_narrowcast",
    "build_config_system",
]



# ---------------------------------------------------------------------------
# Point-to-point
# ---------------------------------------------------------------------------
@dataclass
class PointToPointTestbench:
    """One master, one memory slave, one (request, response) channel pair."""

    system: SystemModel
    master_ni: str
    slave_ni: str
    master: TrafficGeneratorMaster
    master_shell: MasterShell
    master_conn_shell: PointToPointShell
    slave_conn_shell: PointToPointShell
    slave_shell: SlaveShell
    memory: MemorySlave
    spec: ConnectionSpec
    slot_assignment: Dict[Tuple[str, int], List[int]] = field(default_factory=dict)
    #: The richer handle of the declarative builder this wrapper sits on.
    api: Optional[System] = None

    # ------------------------------------------------------------- shortcuts
    @property
    def sim(self):
        return self.system.sim

    @property
    def noc(self):
        return self.system.noc

    def master_channel(self):
        return self.system.kernel(self.master_ni).channel(0)

    def slave_channel(self):
        return self.system.kernel(self.slave_ni).channel(0)

    def run_flit_cycles(self, cycles: int) -> None:
        self.system.run_flit_cycles(cycles)

    def run_until_done(self, max_flit_cycles: int = 20000,
                       step: int = 50) -> int:
        """Run until the system is idle; returns elapsed flit cycles.

        Driven by engine idleness (the event queue draining) instead of the
        seed-era 50-cycle done-flag polling, so there is no overshoot past
        completion.  ``step`` is accepted for compatibility and ignored.
        """
        del step
        return self.system.run_until_idle(max_flit_cycles)


def build_point_to_point(gt: bool = False,
                         request_slots: int = 2,
                         response_slots: int = 2,
                         num_slots: int = 8,
                         rows: int = 1, cols: int = 2,
                         queue_words: int = 8,
                         max_packet_words: int = 23,
                         data_threshold: int = 1,
                         credit_threshold: int = 1,
                         be_arbiter: str = "round_robin",
                         port_clock_mhz: float = DEFAULT_PORT_CLOCK_MHZ,
                         slave_latency: int = 1,
                         pattern: Optional[TrafficPattern] = None,
                         max_transactions: Optional[int] = None,
                         memory_words: int = 0,
                         seq_latency_cycles: int = 2
                         ) -> PointToPointTestbench:
    """Assemble a master -> slave system on a ``rows x cols`` mesh."""
    api = scenarios.build(
        "point_to_point", gt=gt, request_slots=request_slots,
        response_slots=response_slots, num_slots=num_slots, rows=rows,
        cols=cols, queue_words=queue_words, max_packet_words=max_packet_words,
        data_threshold=data_threshold, credit_threshold=credit_threshold,
        be_arbiter=be_arbiter, port_clock_mhz=port_clock_mhz,
        slave_latency=slave_latency, pattern=pattern,
        max_transactions=max_transactions, memory_words=memory_words,
        seq_latency_cycles=seq_latency_cycles)
    master = api.master("master")
    memory = api.memory("memory")
    return PointToPointTestbench(
        system=api.model, master_ni=master.ni, slave_ni=memory.ni,
        master=master.ip, master_shell=master.shell,
        master_conn_shell=master.conn_shell,
        slave_conn_shell=memory.conn_shell, slave_shell=memory.shell,
        memory=memory.ip, spec=api.connection("tb").spec,
        slot_assignment=api.slot_assignment, api=api)


# ---------------------------------------------------------------------------
# GT / BE mix sharing one link
# ---------------------------------------------------------------------------
@dataclass
class TrafficPairHandle:
    """One master/slave pair of the GT/BE mix testbench."""

    name: str
    gt: bool
    master_ni: str
    slave_ni: str
    master: TrafficGeneratorMaster
    master_shell: MasterShell
    memory: MemorySlave
    spec: ConnectionSpec


@dataclass
class GtBeMixTestbench:
    """Several pairs whose traffic all crosses the same inter-router link."""

    system: SystemModel
    pairs: List[TrafficPairHandle]
    #: The richer handle of the declarative builder this wrapper sits on.
    api: Optional[System] = None

    def run_flit_cycles(self, cycles: int) -> None:
        self.system.run_flit_cycles(cycles)

    def run_until_done(self, max_flit_cycles: int = 40000,
                       step: int = 100) -> int:
        """Run until idle (engine-driven; ``step`` ignored, see above)."""
        del step
        return self.system.run_until_idle(max_flit_cycles)

    def gt_pairs(self) -> List[TrafficPairHandle]:
        return [p for p in self.pairs if p.gt]

    def be_pairs(self) -> List[TrafficPairHandle]:
        return [p for p in self.pairs if not p.gt]

    def shared_link(self):
        """The router(0,0) -> router(0,1) link every request crosses."""
        return self.system.noc.links[("router:(0, 0)", "router:(0, 1)")]


def build_gt_be_mix(num_gt: int = 1, num_be: int = 1,
                    gt_slots: int = 2, num_slots: int = 8,
                    queue_words: int = 8,
                    gt_pattern_period: int = 12,
                    be_pattern_period: int = 6,
                    burst_words: int = 4,
                    port_clock_mhz: float = DEFAULT_PORT_CLOCK_MHZ,
                    posted_writes: bool = True) -> GtBeMixTestbench:
    """Masters on router (0,0), slaves on router (0,1), one pair per master."""
    api = scenarios.build(
        "gt_be_mix", num_gt=num_gt, num_be=num_be, gt_slots=gt_slots,
        num_slots=num_slots, queue_words=queue_words,
        gt_pattern_period=gt_pattern_period,
        be_pattern_period=be_pattern_period, burst_words=burst_words,
        port_clock_mhz=port_clock_mhz, posted_writes=posted_writes)
    pairs: List[TrafficPairHandle] = []
    for index in range(num_gt + num_be):
        master_ni, slave_ni = f"m{index}", f"s{index}"
        master = api.master(master_ni)
        memory = api.memory(slave_ni)
        pairs.append(TrafficPairHandle(
            name=master_ni, gt=index < num_gt, master_ni=master_ni,
            slave_ni=slave_ni, master=master.ip, master_shell=master.shell,
            memory=memory.ip, spec=api.connection(f"conn_{master_ni}").spec))
    return GtBeMixTestbench(system=api.model, pairs=pairs, api=api)


# ---------------------------------------------------------------------------
# Narrowcast: one shared address space over several memories
# ---------------------------------------------------------------------------
@dataclass
class NarrowcastTestbench:
    """One master whose address space is split over several memory slaves."""

    system: SystemModel
    master: TrafficGeneratorMaster
    master_shell: MasterShell
    narrowcast_shell: NarrowcastShell
    memories: List[MemorySlave]
    slave_nis: List[str]
    range_words: int
    spec: ConnectionSpec
    #: The richer handle of the declarative builder this wrapper sits on.
    api: Optional[System] = None

    def run_flit_cycles(self, cycles: int) -> None:
        self.system.run_flit_cycles(cycles)

    def run_until_done(self, max_flit_cycles: int = 40000,
                       step: int = 100) -> int:
        """Run until idle (engine-driven; ``step`` ignored, see above)."""
        del step
        return self.system.run_until_idle(max_flit_cycles)


def build_narrowcast(num_slaves: int = 2, range_words: int = 1024,
                     rows: int = 1, cols: int = 2,
                     num_slots: int = 8, queue_words: int = 8,
                     port_clock_mhz: float = DEFAULT_PORT_CLOCK_MHZ,
                     slave_latency: int = 1) -> NarrowcastTestbench:
    """Build a narrowcast system: requests are routed to a slave by address."""
    api = scenarios.build(
        "narrowcast", num_slaves=num_slaves, range_words=range_words,
        rows=rows, cols=cols, num_slots=num_slots, queue_words=queue_words,
        port_clock_mhz=port_clock_mhz, slave_latency=slave_latency)
    master = api.master("master")
    slave_nis = [f"ni_s{i}" for i in range(num_slaves)]
    return NarrowcastTestbench(
        system=api.model, master=master.ip, master_shell=master.shell,
        narrowcast_shell=master.conn_shell,
        memories=[api.memory(name).ip for name in slave_nis],
        slave_nis=slave_nis, range_words=range_words,
        spec=api.connection("narrowcast").spec, api=api)


# ---------------------------------------------------------------------------
# Configuration over the NoC (Figures 8 and 9)
# ---------------------------------------------------------------------------
@dataclass
class ConfigTestbench:
    """A configuration module NI plus two data NIs (the Figure 8 system)."""

    system: SystemModel
    cfg_ni: str
    data_nis: List[str]
    config_shell: ConfigShell
    manager: CentralizedConfigurationManager
    cnip_slaves: Dict[str, ConfigurationSlave]
    bootstrap_operations: int
    #: The richer handle of the declarative builder this wrapper sits on.
    api: Optional[System] = None

    def run_flit_cycles(self, cycles: int) -> None:
        self.system.run_flit_cycles(cycles)

    def run_until_config_idle(self, max_flit_cycles: int = 20000,
                              step: int = 50) -> int:
        """Run until the configuration shell is idle; returns flit cycles.

        Stops at event granularity (between simulator timestamps) the
        moment the configuration shell drains — no 50-cycle overshoot.
        ``step`` is accepted for compatibility and ignored.
        """
        del step
        return self.system.run_until_idle(max_flit_cycles,
                                          predicate=self.config_shell.is_idle)


def build_config_system(num_data_nis: int = 2, num_slots: int = 8,
                        queue_words: int = 8,
                        data_channels_per_ni: int = 2,
                        port_clock_mhz: float = DEFAULT_PORT_CLOCK_MHZ,
                        rows: int = 1, cols: int = 2) -> ConfigTestbench:
    """Build the Figure 8 system and bootstrap its configuration connections.

    The configuration module ``cfg`` sits on router (0,0); the data NIs are
    spread over the mesh.  Each data NI has a CNIP (channel 0 of its ``cnip``
    port) and ``data_channels_per_ni`` further channels on a ``data`` port for
    the connections that will be opened over the NoC afterwards.
    """
    api = scenarios.build(
        "config_system", num_data_nis=num_data_nis, num_slots=num_slots,
        queue_words=queue_words, data_channels_per_ni=data_channels_per_ni,
        port_clock_mhz=port_clock_mhz, rows=rows, cols=cols)
    return ConfigTestbench(
        system=api.model, cfg_ni="cfg",
        data_nis=[f"ni{i + 1}" for i in range(num_data_nis)],
        config_shell=api.config_shell, manager=api.config_manager,
        cnip_slaves=api.cnip_slaves,
        bootstrap_operations=api.bootstrap_operations, api=api)
