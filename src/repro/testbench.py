"""Ready-made simulated systems.

The examples, tests and experiment benchmarks all need complete systems:
master IPs behind master shells, slave memories behind slave shells, NIs
attached to a NoC, connections opened and slots allocated.  The builders in
this module assemble the most common set-ups:

* :func:`build_point_to_point` — one traffic-generating master talking to one
  memory slave over a small mesh (GT or BE);
* :func:`build_gt_be_mix` — several master/slave pairs whose traffic shares a
  single inter-router link, some guaranteed, some best effort (experiment
  E10);
* :func:`build_narrowcast` — one master whose shared address space is split
  over several memory slaves through a narrowcast shell (experiment E11);
* :func:`build_config_system` — a configuration module plus two data NIs,
  with the configuration connections bootstrapped exactly as in Figure 9 so
  connections can then be opened over the NoC itself (experiments E6/E7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config.connection import (
    ChannelEndpointRef,
    ChannelPairSpec,
    ConnectionSpec,
)
from repro.config.manager import (
    CentralizedConfigurationManager,
    FunctionalConfigurator,
)
from repro.core.kernel import NIKernel
from repro.core.registers import (
    REG_CTRL,
    REG_PATH,
    REG_REMOTE_QID,
    REG_SPACE,
    channel_register_address,
    encode_ctrl,
    encode_path,
)
from repro.core.shells.base import ConnectionShell
from repro.core.shells.config_shell import ConfigShell, ConfigurationSlave
from repro.core.shells.master import MasterShell
from repro.core.shells.multiconnection import MultiConnectionShell
from repro.core.shells.narrowcast import AddressRange, NarrowcastShell
from repro.core.shells.point_to_point import PointToPointShell
from repro.core.shells.slave import SlaveShell
from repro.design.generator import SystemModel, build_system
from repro.design.spec import ChannelSpec, NISpec, NoCSpec, PortSpec
from repro.ip.master import TrafficGeneratorMaster
from repro.ip.memory import SharedMemory
from repro.ip.slave import MemorySlave
from repro.ip.traffic import ConstantBitRateTraffic, TrafficPattern

#: Default word-side clock of the IP ports: one word per 500 MHz cycle keeps
#: the shells able to feed the 3-word flit cycle of the network exactly.
DEFAULT_PORT_CLOCK_MHZ = 500.0


# ---------------------------------------------------------------------------
# Point-to-point
# ---------------------------------------------------------------------------
@dataclass
class PointToPointTestbench:
    """One master, one memory slave, one (request, response) channel pair."""

    system: SystemModel
    master_ni: str
    slave_ni: str
    master: TrafficGeneratorMaster
    master_shell: MasterShell
    master_conn_shell: PointToPointShell
    slave_conn_shell: PointToPointShell
    slave_shell: SlaveShell
    memory: MemorySlave
    spec: ConnectionSpec
    slot_assignment: Dict[Tuple[str, int], List[int]] = field(default_factory=dict)

    # ------------------------------------------------------------- shortcuts
    @property
    def sim(self):
        return self.system.sim

    @property
    def noc(self):
        return self.system.noc

    def master_channel(self):
        return self.system.kernel(self.master_ni).channel(0)

    def slave_channel(self):
        return self.system.kernel(self.slave_ni).channel(0)

    def run_flit_cycles(self, cycles: int) -> None:
        self.system.run_flit_cycles(cycles)

    def run_until_done(self, max_flit_cycles: int = 20000,
                       step: int = 50) -> int:
        """Run until the master has no outstanding work; returns flit cycles."""
        ran = 0
        while ran < max_flit_cycles:
            self.run_flit_cycles(step)
            ran += step
            if self.master.done():
                break
        return ran


def build_point_to_point(gt: bool = False,
                         request_slots: int = 2,
                         response_slots: int = 2,
                         num_slots: int = 8,
                         rows: int = 1, cols: int = 2,
                         queue_words: int = 8,
                         max_packet_words: int = 23,
                         data_threshold: int = 1,
                         credit_threshold: int = 1,
                         be_arbiter: str = "round_robin",
                         port_clock_mhz: float = DEFAULT_PORT_CLOCK_MHZ,
                         slave_latency: int = 1,
                         pattern: Optional[TrafficPattern] = None,
                         max_transactions: Optional[int] = None,
                         memory_words: int = 0,
                         seq_latency_cycles: int = 2
                         ) -> PointToPointTestbench:
    """Assemble a master -> slave system on a ``rows x cols`` mesh."""
    master_ni, slave_ni = "ni_m", "ni_s"
    spec = NoCSpec(
        name="p2p_tb", topology="mesh", rows=rows, cols=cols,
        num_slots=num_slots,
        nis=[
            NISpec(name=master_ni, router=(0, 0), num_slots=num_slots,
                   be_arbiter=be_arbiter, max_packet_words=max_packet_words,
                   ports=[PortSpec(name="p", kind="master", shell="p2p",
                                   clock_mhz=port_clock_mhz,
                                   channels=[ChannelSpec(queue_words,
                                                         queue_words)])]),
            NISpec(name=slave_ni, router=(0, cols - 1), num_slots=num_slots,
                   be_arbiter=be_arbiter, max_packet_words=max_packet_words,
                   ports=[PortSpec(name="p", kind="slave", shell="p2p",
                                   clock_mhz=port_clock_mhz,
                                   channels=[ChannelSpec(queue_words,
                                                         queue_words)])]),
        ])
    system = build_system(spec)

    # Master side.
    master_clock = system.port_clock(master_ni, "p")
    master_conn_shell = PointToPointShell("m_conn", system.kernel(master_ni).port("p"),
                                          role="master")
    master_shell = MasterShell("m_shell", master_conn_shell,
                               seq_latency_cycles=seq_latency_cycles)
    if pattern is None:
        pattern = ConstantBitRateTraffic(period_cycles=16, burst_words=4,
                                         write=True)
    master = TrafficGeneratorMaster("master", master_shell, pattern=pattern,
                                    max_transactions=max_transactions)
    for component in (master, master_shell, master_conn_shell):
        master_clock.add_component(component)

    # Slave side.
    slave_clock = system.port_clock(slave_ni, "p")
    slave_conn_shell = PointToPointShell("s_conn", system.kernel(slave_ni).port("p"),
                                         role="slave")
    memory = MemorySlave("memory", memory=SharedMemory(memory_words),
                         latency_cycles=slave_latency)
    slave_shell = SlaveShell("s_shell", slave_conn_shell, memory)
    for component in (slave_conn_shell, slave_shell, memory):
        slave_clock.add_component(component)

    # Open the connection (functionally: this testbench is not about the
    # configuration path; build_config_system exercises that).
    connection = ConnectionSpec(
        name="tb", kind="p2p",
        pairs=[ChannelPairSpec(
            master=ChannelEndpointRef(master_ni, 0),
            slave=ChannelEndpointRef(slave_ni, 0),
            request_gt=gt, request_slots=request_slots if gt else 0,
            response_gt=gt, response_slots=response_slots if gt else 0,
            data_threshold=data_threshold,
            credit_threshold=credit_threshold)])
    configurator = system.functional_configurator()
    configurator.open_connection(system.noc, connection)
    assignment = (system.allocator.assignment_map()
                  if system.allocator is not None else {})

    return PointToPointTestbench(
        system=system, master_ni=master_ni, slave_ni=slave_ni,
        master=master, master_shell=master_shell,
        master_conn_shell=master_conn_shell,
        slave_conn_shell=slave_conn_shell, slave_shell=slave_shell,
        memory=memory, spec=connection, slot_assignment=assignment)


# ---------------------------------------------------------------------------
# GT / BE mix sharing one link
# ---------------------------------------------------------------------------
@dataclass
class TrafficPairHandle:
    """One master/slave pair of the GT/BE mix testbench."""

    name: str
    gt: bool
    master_ni: str
    slave_ni: str
    master: TrafficGeneratorMaster
    master_shell: MasterShell
    memory: MemorySlave
    spec: ConnectionSpec


@dataclass
class GtBeMixTestbench:
    """Several pairs whose traffic all crosses the same inter-router link."""

    system: SystemModel
    pairs: List[TrafficPairHandle]

    def run_flit_cycles(self, cycles: int) -> None:
        self.system.run_flit_cycles(cycles)

    def gt_pairs(self) -> List[TrafficPairHandle]:
        return [p for p in self.pairs if p.gt]

    def be_pairs(self) -> List[TrafficPairHandle]:
        return [p for p in self.pairs if not p.gt]

    def shared_link(self):
        """The router(0,0) -> router(0,1) link every request crosses."""
        return self.system.noc.links[("router:(0, 0)", "router:(0, 1)")]


def build_gt_be_mix(num_gt: int = 1, num_be: int = 1,
                    gt_slots: int = 2, num_slots: int = 8,
                    queue_words: int = 8,
                    gt_pattern_period: int = 12,
                    be_pattern_period: int = 6,
                    burst_words: int = 4,
                    port_clock_mhz: float = DEFAULT_PORT_CLOCK_MHZ,
                    posted_writes: bool = True) -> GtBeMixTestbench:
    """Masters on router (0,0), slaves on router (0,1), one pair per master."""
    if num_gt < 0 or num_be < 0 or num_gt + num_be == 0:
        raise ValueError("need at least one traffic pair")
    ni_specs: List[NISpec] = []
    names: List[Tuple[str, str, bool]] = []
    for index in range(num_gt + num_be):
        gt = index < num_gt
        master_ni = f"m{index}"
        slave_ni = f"s{index}"
        names.append((master_ni, slave_ni, gt))
        ni_specs.append(NISpec(
            name=master_ni, router=(0, 0), num_slots=num_slots,
            ports=[PortSpec(name="p", kind="master", shell="p2p",
                            clock_mhz=port_clock_mhz,
                            channels=[ChannelSpec(queue_words, queue_words)])]))
        ni_specs.append(NISpec(
            name=slave_ni, router=(0, 1), num_slots=num_slots,
            ports=[PortSpec(name="p", kind="slave", shell="p2p",
                            clock_mhz=port_clock_mhz,
                            channels=[ChannelSpec(queue_words, queue_words)])]))
    spec = NoCSpec(name="mix_tb", topology="mesh", rows=1, cols=2,
                   num_slots=num_slots, nis=ni_specs)
    system = build_system(spec)
    configurator = system.functional_configurator()

    pairs: List[TrafficPairHandle] = []
    for master_ni, slave_ni, gt in names:
        master_clock = system.port_clock(master_ni, "p")
        conn_shell = PointToPointShell(f"{master_ni}_conn",
                                       system.kernel(master_ni).port("p"),
                                       role="master")
        master_shell = MasterShell(f"{master_ni}_shell", conn_shell)
        period = gt_pattern_period if gt else be_pattern_period
        pattern = ConstantBitRateTraffic(period_cycles=period,
                                         burst_words=burst_words,
                                         write=True, posted=posted_writes)
        master = TrafficGeneratorMaster(f"{master_ni}_ip", master_shell,
                                        pattern=pattern)
        for component in (master, master_shell, conn_shell):
            master_clock.add_component(component)

        slave_clock = system.port_clock(slave_ni, "p")
        slave_conn = PointToPointShell(f"{slave_ni}_conn",
                                       system.kernel(slave_ni).port("p"),
                                       role="slave")
        memory = MemorySlave(f"{slave_ni}_mem")
        slave_shell = SlaveShell(f"{slave_ni}_shell", slave_conn, memory)
        for component in (slave_conn, slave_shell, memory):
            slave_clock.add_component(component)

        # A guaranteed connection reserves slots for both directions so that
        # its credits also return on reserved slots (otherwise best-effort
        # congestion on the reverse link would throttle the GT channel).
        connection = ConnectionSpec(
            name=f"conn_{master_ni}", kind="p2p",
            pairs=[ChannelPairSpec(
                master=ChannelEndpointRef(master_ni, 0),
                slave=ChannelEndpointRef(slave_ni, 0),
                request_gt=gt, request_slots=gt_slots if gt else 0,
                response_gt=gt, response_slots=gt_slots if gt else 0)])
        configurator.open_connection(system.noc, connection)
        pairs.append(TrafficPairHandle(
            name=master_ni, gt=gt, master_ni=master_ni, slave_ni=slave_ni,
            master=master, master_shell=master_shell, memory=memory,
            spec=connection))
    return GtBeMixTestbench(system=system, pairs=pairs)


# ---------------------------------------------------------------------------
# Narrowcast: one shared address space over several memories
# ---------------------------------------------------------------------------
@dataclass
class NarrowcastTestbench:
    """One master whose address space is split over several memory slaves."""

    system: SystemModel
    master: TrafficGeneratorMaster
    master_shell: MasterShell
    narrowcast_shell: NarrowcastShell
    memories: List[MemorySlave]
    slave_nis: List[str]
    range_words: int
    spec: ConnectionSpec

    def run_flit_cycles(self, cycles: int) -> None:
        self.system.run_flit_cycles(cycles)

    def run_until_done(self, max_flit_cycles: int = 40000,
                       step: int = 100) -> int:
        ran = 0
        while ran < max_flit_cycles:
            self.run_flit_cycles(step)
            ran += step
            if self.master.done():
                break
        return ran


def build_narrowcast(num_slaves: int = 2, range_words: int = 1024,
                     rows: int = 1, cols: int = 2,
                     num_slots: int = 8, queue_words: int = 8,
                     port_clock_mhz: float = DEFAULT_PORT_CLOCK_MHZ,
                     slave_latency: int = 1) -> NarrowcastTestbench:
    """Build a narrowcast system: requests are routed to a slave by address."""
    if num_slaves < 1:
        raise ValueError("narrowcast needs at least one slave")
    master_ni = "ni_m"
    slave_nis = [f"ni_s{i}" for i in range(num_slaves)]
    mesh_nodes = [(r, c) for r in range(rows) for c in range(cols)]
    ni_specs = [NISpec(
        name=master_ni, router=(0, 0), num_slots=num_slots,
        ports=[PortSpec(name="p", kind="master", shell="narrowcast",
                        clock_mhz=port_clock_mhz,
                        channels=[ChannelSpec(queue_words, queue_words)
                                  for _ in range(num_slaves)])])]
    for index, name in enumerate(slave_nis):
        router = mesh_nodes[(index + 1) % len(mesh_nodes)]
        ni_specs.append(NISpec(
            name=name, router=router, num_slots=num_slots,
            ports=[PortSpec(name="p", kind="slave", shell="p2p",
                            clock_mhz=port_clock_mhz,
                            channels=[ChannelSpec(queue_words, queue_words)])]))
    spec = NoCSpec(name="narrowcast_tb", topology="mesh", rows=rows, cols=cols,
                   num_slots=num_slots, nis=ni_specs)
    system = build_system(spec)

    # Master side: narrowcast shell decodes the address into a connection.
    ranges = [AddressRange(base=i * range_words * 4, size=range_words * 4,
                           conn=i) for i in range(num_slaves)]
    master_clock = system.port_clock(master_ni, "p")
    narrowcast_shell = NarrowcastShell("narrowcast",
                                       system.kernel(master_ni).port("p"),
                                       address_ranges=ranges)
    master_shell = MasterShell("m_shell", narrowcast_shell)
    master = TrafficGeneratorMaster("master", master_shell)
    for component in (master, master_shell, narrowcast_shell):
        master_clock.add_component(component)

    # Slave side: one memory per slave NI.
    memories: List[MemorySlave] = []
    pairs: List[ChannelPairSpec] = []
    for index, name in enumerate(slave_nis):
        slave_clock = system.port_clock(name, "p")
        slave_conn = PointToPointShell(f"{name}_conn",
                                       system.kernel(name).port("p"),
                                       role="slave")
        memory = MemorySlave(f"{name}_mem", memory=SharedMemory(range_words * 4),
                             latency_cycles=slave_latency)
        slave_shell = SlaveShell(f"{name}_shell", slave_conn, memory)
        for component in (slave_conn, slave_shell, memory):
            slave_clock.add_component(component)
        memories.append(memory)
        pairs.append(ChannelPairSpec(
            master=ChannelEndpointRef(master_ni, index),
            slave=ChannelEndpointRef(name, 0)))

    connection = ConnectionSpec(name="narrowcast", kind="narrowcast", pairs=pairs)
    system.functional_configurator().open_connection(system.noc, connection)
    return NarrowcastTestbench(system=system, master=master,
                               master_shell=master_shell,
                               narrowcast_shell=narrowcast_shell,
                               memories=memories, slave_nis=slave_nis,
                               range_words=range_words, spec=connection)


# ---------------------------------------------------------------------------
# Configuration over the NoC (Figures 8 and 9)
# ---------------------------------------------------------------------------
@dataclass
class ConfigTestbench:
    """A configuration module NI plus two data NIs (the Figure 8 system)."""

    system: SystemModel
    cfg_ni: str
    data_nis: List[str]
    config_shell: ConfigShell
    manager: CentralizedConfigurationManager
    cnip_slaves: Dict[str, ConfigurationSlave]
    bootstrap_operations: int

    def run_flit_cycles(self, cycles: int) -> None:
        self.system.run_flit_cycles(cycles)

    def run_until_config_idle(self, max_flit_cycles: int = 20000,
                              step: int = 50) -> int:
        ran = 0
        while ran < max_flit_cycles:
            self.run_flit_cycles(step)
            ran += step
            if self.config_shell.is_idle():
                break
        return ran


def build_config_system(num_data_nis: int = 2, num_slots: int = 8,
                        queue_words: int = 8,
                        data_channels_per_ni: int = 2,
                        port_clock_mhz: float = DEFAULT_PORT_CLOCK_MHZ,
                        rows: int = 1, cols: int = 2) -> ConfigTestbench:
    """Build the Figure 8 system and bootstrap its configuration connections.

    The configuration module ``cfg`` sits on router (0,0); the data NIs are
    spread over the mesh.  Each data NI has a CNIP (channel 0 of its ``cnip``
    port) and ``data_channels_per_ni`` further channels on a ``data`` port for
    the connections that will be opened over the NoC afterwards.
    """
    cfg_ni = "cfg"
    data_nis = [f"ni{i + 1}" for i in range(num_data_nis)]
    mesh_nodes = [(r, c) for r in range(rows) for c in range(cols)]
    # The CNIP destination queue must hold a whole configuration sequence:
    # until the response channel of the configuration connection is enabled
    # (the last write of Figure 9 step 2) no credits can be returned, so the
    # outstanding configuration messages must fit in the remote buffer.
    cnip_queue_words = max(queue_words, 16)
    ni_specs = [NISpec(
        name=cfg_ni, router=(0, 0), num_slots=num_slots,
        ports=[PortSpec(name="cfg", kind="master", shell=None,
                        clock_mhz=port_clock_mhz,
                        channels=[ChannelSpec(cnip_queue_words, cnip_queue_words)
                                  for _ in range(num_data_nis)])])]
    for index, name in enumerate(data_nis):
        router = mesh_nodes[(index + 1) % len(mesh_nodes)]
        channels = [ChannelSpec(cnip_queue_words, cnip_queue_words)]  # CNIP
        channels += [ChannelSpec(queue_words, queue_words)
                     for _ in range(data_channels_per_ni)]
        ni_specs.append(NISpec(
            name=name, router=router, num_slots=num_slots,
            ports=[PortSpec(name="cnip", kind="config", shell="config",
                            clock_mhz=port_clock_mhz,
                            channels=[channels[0]]),
                   PortSpec(name="data", kind="master", shell=None,
                            clock_mhz=port_clock_mhz,
                            channels=channels[1:])]))
    spec = NoCSpec(name="config_tb", topology="mesh", rows=rows, cols=cols,
                   num_slots=num_slots, nis=ni_specs)
    system = build_system(spec)

    # The configuration shell at the cfg NI (master role, one connection per
    # remote CNIP).
    cfg_clock = system.port_clock(cfg_ni, "cfg")
    cfg_conn_shell = ConnectionShell("cfg_conn", system.kernel(cfg_ni).port("cfg"),
                                     role="master")
    remote_conns = {name: index for index, name in enumerate(data_nis)}
    config_shell = ConfigShell("cfg_shell", local_kernel=system.kernel(cfg_ni),
                               shell=cfg_conn_shell, remote_conns=remote_conns)
    cfg_clock.add_component(cfg_conn_shell)
    cfg_clock.add_component(config_shell)

    # The CNIP of every data NI: a slave shell whose IP is the register file.
    cnip_slaves: Dict[str, ConfigurationSlave] = {}
    for name in data_nis:
        clock = system.port_clock(name, "cnip")
        conn = PointToPointShell(f"{name}_cnip_conn",
                                 system.kernel(name).port("cnip"), role="slave")
        slave = ConfigurationSlave(system.kernel(name))
        shell = SlaveShell(f"{name}_cnip_shell", conn, slave)
        clock.add_component(conn)
        clock.add_component(shell)
        cnip_slaves[name] = slave

    # Bootstrap the configuration connections (Figure 9, steps 1 and 2).
    bootstrap_ops = 0
    for index, name in enumerate(data_nis):
        bootstrap_ops += bootstrap_configuration_connection(
            config_shell=config_shell,
            noc=system.noc,
            local_kernel=system.kernel(cfg_ni),
            local_channel=index,
            remote_name=name,
            remote_kernel=system.kernel(name),
            remote_channel=0)
    manager = CentralizedConfigurationManager(
        noc=system.noc, kernels=system.kernels, config_shell=config_shell,
        allocator=system.allocator)
    return ConfigTestbench(system=system, cfg_ni=cfg_ni, data_nis=data_nis,
                           config_shell=config_shell, manager=manager,
                           cnip_slaves=cnip_slaves,
                           bootstrap_operations=bootstrap_ops)


def bootstrap_configuration_connection(config_shell: ConfigShell,
                                       noc, local_kernel: NIKernel,
                                       local_channel: int,
                                       remote_name: str,
                                       remote_kernel: NIKernel,
                                       remote_channel: int) -> int:
    """Open the configuration connection itself (Figure 9, steps 1 and 2).

    Step 1 sets up the request channel (configuration module to the remote
    CNIP) by writing registers of the *local* NI directly through the
    configuration shell.  Step 2 then uses that channel to set up the response
    channel (remote CNIP back to the configuration module) by sending write
    messages over the NoC; the last write requests an acknowledgement.

    Returns the number of configuration operations issued.
    """
    local_name = local_kernel.name
    remote_dest_words = remote_kernel.channel(remote_channel).dest_queue.capacity
    local_dest_words = local_kernel.channel(local_channel).dest_queue.capacity

    operations = 0
    # Step 1: request channel, written locally ("wr path, rqid / wr space /
    # wr be, enable" in Figure 9).
    step1 = [
        (channel_register_address(local_channel, REG_PATH),
         encode_path(noc.route(local_name, remote_name))),
        (channel_register_address(local_channel, REG_REMOTE_QID),
         remote_channel),
        (channel_register_address(local_channel, REG_SPACE),
         remote_dest_words),
        (channel_register_address(local_channel, REG_CTRL),
         encode_ctrl(True, False)),
    ]
    for address, value in step1:
        config_shell.write(local_name, address, value)
        operations += 1

    # Step 2: response channel, written at the remote NI via the NoC.
    step2 = [
        (channel_register_address(remote_channel, REG_PATH),
         encode_path(noc.route(remote_name, local_name))),
        (channel_register_address(remote_channel, REG_REMOTE_QID),
         local_channel),
        (channel_register_address(remote_channel, REG_SPACE),
         local_dest_words),
        (channel_register_address(remote_channel, REG_CTRL),
         encode_ctrl(True, False)),
    ]
    for position, (address, value) in enumerate(step2):
        acknowledged = position == len(step2) - 1
        config_shell.write(remote_name, address, value,
                           acknowledged=acknowledged)
        operations += 1
    return operations
