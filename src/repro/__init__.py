"""repro: a reproduction of the Aethereal on-chip network interface.

This package reproduces, in Python, the system described in "An Efficient
On-Chip Network Interface Offering Guaranteed Services, Shared-Memory
Abstraction, and Flexible Network Configuration" (Radulescu, Dielissen,
Goossens, Rijpkema, Wielage — DATE 2004):

* :mod:`repro.core` — the network interface itself: kernel (queues, GT/BE
  scheduler, packetization, credit-based end-to-end flow control, memory-
  mapped configuration registers) and shells (narrowcast, multicast,
  multi-connection, DTL/AXI adapters, configuration shell);
* :mod:`repro.network` — the NoC substrate: GT/BE routers, links, TDM slot
  tables, topologies, source routing;
* :mod:`repro.protocol` — transactions and message formats (Figure 7), DTL /
  AXI / DTL-MMIO adapters;
* :mod:`repro.config` — run-time configuration: slot allocation, register
  programs, centralized configuration over the NoC, distributed model;
* :mod:`repro.design` — design-time instantiation from (XML) specs, plus the
  calibrated area and timing models of Section 5;
* :mod:`repro.analysis` — analytic throughput/latency/jitter guarantees and
  verification against simulation;
* :mod:`repro.ip` — IP-module models (traffic generators, memories);
* :mod:`repro.baselines` — software protocol stack and shared-bus baselines;
* :mod:`repro.testbench` — ready-made simulated systems used by the examples,
  tests and benchmarks.
"""

__version__ = "1.0.0"

from repro.design.generator import build_system
from repro.design.spec import reference_ni_spec, reference_noc_spec

__all__ = [
    "__version__",
    "build_system",
    "reference_ni_spec",
    "reference_noc_spec",
]
