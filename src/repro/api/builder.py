"""Declarative system builder: one fluent front door for whole systems.

The paper's third headline claim is flexible network configuration —
arbitrary topologies whose connections are opened and closed at run time.
:class:`SystemBuilder` turns a short declarative description into a fully
elaborated simulated system:

* declare a topology (:meth:`SystemBuilder.mesh`, :meth:`SystemBuilder.ring`,
  :meth:`SystemBuilder.single_router`, :meth:`SystemBuilder.torus`,
  :meth:`SystemBuilder.double_ring`, :meth:`SystemBuilder.tree`, or any graph
  at all through :meth:`SystemBuilder.custom_topology`) and optionally a
  routing strategy (the ``routing=`` knob of every topology method, plus a
  per-connection override on :meth:`SystemBuilder.connect`);
* attach IP modules to NIs (:meth:`SystemBuilder.add_master`,
  :meth:`SystemBuilder.add_memory`, :meth:`SystemBuilder.add_node`,
  :meth:`SystemBuilder.add_config_module`);
* declare connections (:meth:`SystemBuilder.connect`) — best effort or
  guaranteed, point-to-point, narrowcast (one master, address-interleaved
  slaves) or shared-slave (several masters, one memory behind a
  multi-connection shell);
* :meth:`SystemBuilder.build` validates the description, elaborates it into
  the :class:`~repro.design.spec.NoCSpec` / :class:`~repro.design.spec.NISpec`
  / :class:`~repro.design.spec.PortSpec` design description, instantiates
  shells and IPs, allocates TDMA slots and opens every connection — either
  instantly through the :class:`~repro.config.manager.FunctionalConfigurator`
  or over the NoC itself through the
  :class:`~repro.config.manager.CentralizedConfigurationManager`
  (``configuration("centralized")``).

The result is a :class:`System` handle with named accessors
(``system.master("dsp0")``, ``system.connection("dsp0->mem0")``), an
idleness-driven :meth:`System.run_until_idle`, and statistics / trace
shortcuts.  See ``BUILDING.md`` for the full pipeline walk-through and
:mod:`repro.api.scenarios` for ready-made registered systems.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.config.connection import (
    ChannelEndpointRef,
    ChannelPairSpec,
    ConnectionSpec,
)
from repro.config.manager import (
    CentralizedConfigurationManager,
    ConnectionHandle,
    FunctionalConfigurator,
)
from repro.core.shells.base import ConnectionShell
from repro.core.shells.config_shell import ConfigShell, ConfigurationSlave
from repro.core.shells.master import DEFAULT_SEQ_LATENCY, MasterShell
from repro.core.shells.multicast import MulticastShell
from repro.core.shells.multiconnection import MultiConnectionShell
from repro.core.shells.narrowcast import AddressRange, NarrowcastShell
from repro.core.shells.point_to_point import PointToPointShell
from repro.core.shells.slave import SlaveShell
from repro.design.generator import SystemModel, build_system
from repro.design.spec import ChannelSpec, NISpec, NoCSpec, PortSpec
from repro.faults import FaultInjector, FaultManager, FaultPlan, HealthReport
from repro.obs import OBS_TARGETS, Observatory, build_observatory
from repro.ip.master import TrafficGeneratorMaster
from repro.ip.memory import SharedMemory
from repro.ip.slave import MemorySlave, SlaveIP
from repro.ip.traffic import TrafficPattern
from repro.mem.controller import SchedulerError, make_scheduler
from repro.mem.slave import DRAMBackedSlave
from repro.mem.timing import (
    DRAMTiming,
    TimingError,
    make_geometry,
    resolve_timing,
)
from repro.analysis.deadlock import (
    DeadlockReport,
    DeadlockWarning,
    analyze_noc_routes,
)
from repro.network.routing import (
    RouteError,
    RoutingStrategy,
    make_routing,
)
from repro.network.topology import Topology, TopologyError, make_topology
from repro.sim.clock import Clock
from repro.sim.engine import Simulator
from repro.sim.trace import NULL_TRACER, Tracer
from repro.config.bootstrap import bootstrap_configuration_connection

#: Word-side clock of the IP ports (one word per cycle feeds the 3-word flit
#: cycle of the 500/3 MHz network exactly).
DEFAULT_PORT_CLOCK_MHZ = 500.0

#: CNIP destination queues must hold a whole configuration sequence (no
#: credits return before the response channel is enabled — Figure 9).
MIN_CNIP_QUEUE_WORDS = 16


class BuilderError(ValueError):
    """Raised at :meth:`SystemBuilder.build` time for bad declarations."""


# ---------------------------------------------------------------------------
# Declarations (builder-internal)
# ---------------------------------------------------------------------------
@dataclass
class _IPDecl:
    """Common fields of every declared NI-attached entity."""

    name: str
    router: Optional[Hashable]
    ni: str
    port: str
    clock_mhz: float
    queue_words: int
    num_slots: Optional[int]
    be_arbiter: str
    max_packet_words: int


@dataclass
class _MasterDecl(_IPDecl):
    pattern: Optional[TrafficPattern] = None
    max_transactions: Optional[int] = None
    stop_cycle: Optional[int] = None
    seq_latency_cycles: int = DEFAULT_SEQ_LATENCY
    max_outstanding: int = 16
    protocol: str = "dtl"
    #: End-to-end retry knobs (None = builder-wide default from retry()).
    timeout_cycles: Optional[int] = None
    max_retries: Optional[int] = None
    retry_backoff: Optional[float] = None
    ip_name: str = ""
    shell_name: str = ""
    conn_name: str = ""


@dataclass
class _MemoryDecl(_IPDecl):
    words: int = 0
    latency: int = 1
    transactions_per_cycle: int = 1
    scheduling: str = "queue_fill"
    protocol: str = "dtl"
    backend: str = "ideal"
    timing: Union[str, DRAMTiming] = "default"
    dram_scheduler: str = "fcfs"
    banks: Optional[int] = None
    row_words: Optional[int] = None
    ip_name: str = ""
    shell_name: str = ""
    conn_name: str = ""


@dataclass
class _NodeDecl(_IPDecl):
    channels: int = 1
    kind: str = "master"
    cnip: bool = False


@dataclass
class _ConfigDecl(_IPDecl):
    pass


@dataclass
class _ConnDecl:
    name: str
    master: str
    slaves: List[str]
    gt: bool
    request_slots: int
    response_slots: int
    data_threshold: int
    credit_threshold: int
    narrowcast_ranges: Optional[List[Tuple[int, int]]]
    translate_addresses: bool
    multicast: bool = False
    #: Per-connection routing override (strategy instance), None = default.
    routing: Optional[RoutingStrategy] = None


# ---------------------------------------------------------------------------
# Handles exposed by the built System
# ---------------------------------------------------------------------------
@dataclass
class MasterHandle:
    """A built master: the traffic-generating IP and its shell stack."""

    name: str
    ni: str
    port: str
    ip: TrafficGeneratorMaster
    shell: MasterShell
    conn_shell: ConnectionShell
    clock: Clock

    # Convenience pass-throughs so examples read naturally.
    def issue(self, transaction) -> None:
        self.ip.issue(transaction)

    def issue_many(self, transactions) -> None:
        self.ip.issue_many(transactions)

    def done(self) -> bool:
        return self.ip.done()

    @property
    def completed(self):
        return self.ip.completed

    def latency_summary(self) -> dict:
        return self.ip.latency_summary()

    @property
    def stats(self):
        return self.ip.stats


@dataclass
class MemoryHandle:
    """A built memory: the slave IP (ideal or DRAM-backed) and its shells."""

    name: str
    ni: str
    port: str
    ip: SlaveIP
    shell: SlaveShell
    conn_shell: ConnectionShell
    clock: Clock

    @property
    def memory(self) -> SharedMemory:
        return self.ip.memory

    @property
    def stats(self):
        return self.ip.stats

    @property
    def backend(self) -> str:
        """``"dram"`` for a :class:`DRAMBackedSlave`, else ``"ideal"``."""
        return "dram" if isinstance(self.ip, DRAMBackedSlave) else "ideal"

    @property
    def dram(self) -> DRAMBackedSlave:
        """The DRAM-backed slave IP (raises for ideal memories)."""
        if not isinstance(self.ip, DRAMBackedSlave):
            raise BuilderError(
                f"memory {self.name!r} uses the ideal backend; declare it "
                "with add_memory(..., backend='dram') for DRAM statistics")
        return self.ip


@dataclass
class ConnectionInfo:
    """A declared connection after elaboration: spec, slots and handle."""

    name: str
    spec: ConnectionSpec
    gt: bool
    #: Injection slots per (ni, channel) owner for GT channels.
    slot_assignment: Dict[Tuple[str, int], List[int]] = field(default_factory=dict)
    #: Present when the connection was opened by the centralized manager.
    handle: Optional[ConnectionHandle] = None


class System:
    """A built system: named accessors, idleness-driven running, stats.

    Obtained from :meth:`SystemBuilder.build`; wraps the lower-level
    :class:`~repro.design.generator.SystemModel` (available as
    :attr:`model`) without hiding it.
    """

    def __init__(self, model: SystemModel,
                 masters: Dict[str, MasterHandle],
                 memories: Dict[str, MemoryHandle],
                 connections: Dict[str, ConnectionInfo],
                 configurator: Optional[FunctionalConfigurator] = None,
                 config_shell: Optional[ConfigShell] = None,
                 config_manager: Optional[CentralizedConfigurationManager] = None,
                 cnip_slaves: Optional[Dict[str, ConfigurationSlave]] = None,
                 bootstrap_operations: int = 0,
                 configuration_mode: str = "functional",
                 tracer: Tracer = NULL_TRACER,
                 deadlock_report: Optional[DeadlockReport] = None,
                 fault_manager: Optional[FaultManager] = None,
                 deadlock_check: str = "warn",
                 obs: Optional[Observatory] = None) -> None:
        self.model = model
        self.configuration_mode = configuration_mode
        self.masters = masters
        self.memories = memories
        self.connections = connections
        self.configurator = configurator
        self.config_shell = config_shell
        self.config_manager = config_manager
        self.cnip_slaves = dict(cnip_slaves or {})
        self.bootstrap_operations = bootstrap_operations
        self.tracer = tracer
        #: The channel-dependency-graph analysis of the declared BE routes
        #: (None when built with ``options(deadlock_check="off")``).
        self.deadlock_report = deadlock_report
        self._fault_manager = fault_manager
        self._deadlock_check = deadlock_check
        #: The probe network (None unless built with
        #: :meth:`SystemBuilder.observe`).
        self.obs = obs

    # --------------------------------------------------------------- lookups
    @property
    def sim(self) -> Simulator:
        return self.model.sim

    @property
    def noc(self):
        return self.model.noc

    @property
    def spec(self) -> NoCSpec:
        return self.model.spec

    @property
    def kernels(self):
        return self.model.kernels

    def kernel(self, ni_name: str):
        return self.model.kernel(ni_name)

    def ni(self, ni_name: str):
        return self.model.ni(ni_name)

    def port_clock(self, ni_name: str, port_name: str) -> Clock:
        return self.model.port_clock(ni_name, port_name)

    def master(self, name: str) -> MasterHandle:
        return self._lookup(self.masters, name, "master")

    def memory(self, name: str) -> MemoryHandle:
        return self._lookup(self.memories, name, "memory")

    def connection(self, name: str) -> ConnectionInfo:
        return self._lookup(self.connections, name, "connection")

    @staticmethod
    def _lookup(table: dict, name: str, kind: str):
        try:
            return table[name]
        except KeyError:
            known = ", ".join(sorted(table)) or "<none>"
            raise BuilderError(
                f"unknown {kind} {name!r} (known: {known})") from None

    @property
    def slot_assignment(self) -> Dict[Tuple[str, int], List[int]]:
        """Global injection-slot assignment map of the central allocator."""
        if self.model.allocator is None:
            return {}
        return self.model.allocator.assignment_map()

    # --------------------------------------------------------------- running
    def start(self) -> None:
        self.model.start()

    def run_flit_cycles(self, cycles: int) -> None:
        self.model.run_flit_cycles(cycles)

    def run_ns(self, nanoseconds: float) -> None:
        self.model.run_ns(nanoseconds)

    def run_until_idle(self, max_flit_cycles: int = 200000,
                       predicate: Optional[Callable[[], bool]] = None) -> int:
        """Run until the engine is idle; returns elapsed flit cycles."""
        return self.model.run_until_idle(max_flit_cycles, predicate=predicate)

    # ------------------------------------------------- runtime reconfiguration
    def close_connection(self, name: str):
        """Close a declared connection the same way it was opened.

        In centralized mode the close program travels over the NoC through
        the configuration module (run the system until the config shell is
        idle); in functional mode (even when a config module exists for
        other purposes) it is applied instantly.
        """
        info = self.connection(name)
        if self.configuration_mode == "centralized":
            info.handle = self.config_manager.close_connection(info.spec)
            return info.handle
        if self.configurator is None:
            raise BuilderError("system was built without a configurator")
        return self.configurator.close_connection(info.spec)

    def reopen_connection(self, name: str):
        """Reopen a previously closed declared connection (same channel)."""
        info = self.connection(name)
        if self.configuration_mode == "centralized":
            info.handle = self.config_manager.open_connection(info.spec)
            return info.handle
        if self.configurator is None:
            raise BuilderError("system was built without a configurator")
        return self.configurator.open_connection(self.noc, info.spec)

    # -------------------------------------------------------- fault handling
    @property
    def faults(self) -> FaultManager:
        """The runtime fault manager.

        Built systems with a declared fault plan
        (:meth:`SystemBuilder.inject_fault`) already own one; otherwise it
        is created on first access so links can also be failed manually
        mid-run (:meth:`fail_link` / :meth:`repair_link`).
        """
        if self._fault_manager is None:
            self._fault_manager = FaultManager(
                noc=self.model.noc, kernels=self.model.kernels,
                allocator=self.model.allocator,
                connections=self.connections, masters=self.masters,
                deadlock_check=self._deadlock_check)
            if self.obs is not None:
                self.obs.bind_faults(self._fault_manager)
        return self._fault_manager

    def fail_link(self, a: Hashable, b: Hashable) -> None:
        """Fail both directions between two adjacent elements *now*,
        rerouting affected channels (see
        :meth:`~repro.faults.manager.FaultManager.link_down`)."""
        self.faults.link_down(a, b)

    def repair_link(self, a: Hashable, b: Hashable) -> None:
        """Bring both directions between two adjacent elements back up."""
        self.faults.repair(a, b)

    def health_report(self) -> HealthReport:
        """Degradation snapshot: failed/repaired links, rerouted and
        degraded channels, drop/retry counts, GT guarantee status."""
        return self.faults.health_report()

    # ------------------------------------------------------------ statistics
    def counters(self) -> Dict[str, dict]:
        """Per-NI kernel statistics summaries, keyed by NI name."""
        return {name: kernel.stats.summary()
                for name, kernel in self.model.kernels.items()}

    def fingerprint(self) -> dict:
        """A deterministic result digest used by equivalence tests."""
        return {
            "now_ps": self.sim.now,
            "flits_forwarded": self.noc.total_flits_forwarded(),
            "kernels": self.counters(),
            "masters": {name: {"latency": handle.latency_summary(),
                               "stats": handle.stats.summary(),
                               "completed": len(handle.completed)}
                        for name, handle in self.masters.items()},
            "memories": {name: {"reads": handle.memory.reads,
                                "writes": handle.memory.writes}
                         for name, handle in self.memories.items()},
        }

    def trace_events(self, kind: Optional[str] = None,
                     source: Optional[str] = None):
        """Recorded trace events (requires ``SystemBuilder.trace``)."""
        return self.tracer.filter(kind=kind, source=source)

    def report(self) -> dict:
        """One run artifact: counters, health, and (when the system was
        built with :meth:`SystemBuilder.observe`) the sampled metric
        timelines plus the per-component capture buffers."""
        out: dict = {
            "system": self.spec.name,
            "now_ps": self.sim.now,
            "counters": self.counters(),
            "health": self.health_report().as_dict(),
        }
        if self.obs is not None:
            out["metrics"] = self.obs.series()
            out["captures"] = self.obs.captures()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"System({self.spec.name!r}, nis={len(self.model.nis)}, "
                f"masters={len(self.masters)}, memories={len(self.memories)}, "
                f"connections={len(self.connections)})")


@dataclass
class _ObsDecl:
    """An ``observe()`` declaration: probe families plus sampling knobs."""

    targets: Tuple[str, ...]
    period: int
    capture_depth: int
    series_cap: int


# ---------------------------------------------------------------------------
# The builder
# ---------------------------------------------------------------------------
class SystemBuilder:
    """Fluent, declarative front door for assembling simulated systems.

    Every declaration method returns ``self`` so descriptions chain::

        system = (SystemBuilder("quickstart")
                  .mesh(1, 2)
                  .add_master("cpu", router=(0, 0))
                  .add_memory("mem", router=(0, 1))
                  .connect("cpu", "mem")
                  .build())

    Validation happens in :meth:`build`, which raises :class:`BuilderError`
    with an actionable message for inconsistent descriptions (duplicate
    names, unknown endpoints, GT slot demand exceeding the slot table, ...).
    """

    def __init__(self, name: str = "system") -> None:
        self.name = name
        self._topology_kind: Optional[str] = None
        #: Factory keyword arguments for the topology registry
        #: (``{"rows": ..., "cols": ...}``, ``{"num_routers": ...}``, ...).
        self._topology_params: Dict[str, object] = {}
        #: A pre-built custom topology (``custom_topology``), else None.
        self._custom_topo: Optional[Topology] = None
        self._num_slots = 8
        self._be_buffer_flits = 8
        self._slot_policy = "spread"
        self._routing: Union[str, RoutingStrategy] = "auto"
        #: True once the user chose a strategy explicitly (routing() or a
        #: topology method's routing=); topology defaults then never
        #: overwrite it, regardless of call order.
        self._routing_explicit = False
        self._deadlock_check = "warn"
        self._fault_plan = FaultPlan()
        #: Builder-wide retry defaults: (timeout_cycles, max_retries,
        #: backoff), applied to masters that don't set their own.
        self._retry_defaults: Optional[Tuple[int, int, float]] = None
        self._decls: List[_IPDecl] = []
        self._connections: List[_ConnDecl] = []
        self._mode = "functional"
        self._sim: Optional[Simulator] = None
        self._tracer: Tracer = NULL_TRACER
        self._obs: Optional[_ObsDecl] = None
        self._router_slot_tables = False
        self._strict_gt = True
        self._auto_router = 0

    # ------------------------------------------------------------- topology
    def mesh(self, rows: int, cols: int, *, num_slots: int = 8,
             be_buffer_flits: int = 8,
             routing: Optional[Union[str, RoutingStrategy]] = None
             ) -> "SystemBuilder":
        """A ``rows x cols`` mesh; routers are ``(row, col)`` tuples.

        ``routing=None`` keeps an explicitly chosen strategy (see
        :meth:`routing`) or falls back to ``"auto"`` (XY on meshes).
        """
        return self._set_topology("mesh", {"rows": rows, "cols": cols},
                                  num_slots, be_buffer_flits, routing)

    def torus(self, rows: int, cols: int, *, num_slots: int = 8,
              be_buffer_flits: int = 8,
              routing: Optional[Union[str, RoutingStrategy]] = None
              ) -> "SystemBuilder":
        """A ``rows x cols`` torus (mesh plus wraparound links).

        Routers are ``(row, col)`` tuples.  The default routing strategy is
        the deadlock-safe
        :class:`~repro.network.routing.TorusDimensionOrdered`; pass
        ``routing="shortest"`` only if you know the declared best-effort
        routes cannot form a channel-dependency cycle (the builder checks).
        """
        return self._set_topology("torus", {"rows": rows, "cols": cols},
                                  num_slots, be_buffer_flits, routing,
                                  default_routing="torus")

    def ring(self, num_routers: int, *, num_slots: int = 8,
             be_buffer_flits: int = 8,
             routing: Optional[Union[str, RoutingStrategy]] = None
             ) -> "SystemBuilder":
        """A ring of ``num_routers`` routers; routers are ints ``0..n-1``."""
        return self._set_topology("ring", {"num_routers": num_routers},
                                  num_slots, be_buffer_flits, routing)

    def double_ring(self, num_routers: int, *, num_slots: int = 8,
                    be_buffer_flits: int = 8,
                    routing: Optional[Union[str, RoutingStrategy]] = None
                    ) -> "SystemBuilder":
        """Two concentric rings joined by spokes; routers are
        ``("in", i)`` / ``("out", i)`` tuples."""
        return self._set_topology("double_ring",
                                  {"num_routers": num_routers},
                                  num_slots, be_buffer_flits, routing)

    def tree(self, arity: int, depth: int, *, num_slots: int = 8,
             be_buffer_flits: int = 8,
             routing: Optional[Union[str, RoutingStrategy]] = None
             ) -> "SystemBuilder":
        """A rooted ``arity``-ary tree of ``depth`` levels of edges;
        routers are ints numbered breadth-first from the root.

        Shortest-path routing on a tree is unique and deadlock-free (trees
        have no cycles), so the ``auto`` default is already safe.
        """
        return self._set_topology("tree", {"arity": arity, "depth": depth},
                                  num_slots, be_buffer_flits, routing)

    def single_router(self, *, num_slots: int = 8,
                      be_buffer_flits: int = 8) -> "SystemBuilder":
        """Everything attached to one router (bus-like degenerate NoC)."""
        return self._set_topology("single", {}, num_slots,
                                  be_buffer_flits, None)

    def custom_topology(self, topology: Topology, *, num_slots: int = 8,
                        be_buffer_flits: int = 8,
                        routing: Optional[Union[str, RoutingStrategy]] = None
                        ) -> "SystemBuilder":
        """Any user-built :class:`~repro.network.topology.Topology`.

        The graph is captured into the design spec as node/edge lists, so
        the built system's spec still serializes to XML and rebuilds
        identically.  The graph must be connected and non-empty (checked at
        :meth:`build` time).  Combine with
        :class:`~repro.network.routing.TableRouting` when shortest-path
        routes would not be deadlock-safe.
        """
        if not isinstance(topology, Topology):
            raise BuilderError(
                f"custom_topology() takes a Topology, got "
                f"{type(topology).__name__} (build one with "
                "Topology.custom(nodes, edges) or the add_router/connect "
                "primitives)")
        self._custom_topo = topology
        # The node/edge lists are captured at build() time (the graph may
        # still be extended); only the name is needed before then.
        return self._set_topology("custom", {"name": topology.name},
                                  num_slots, be_buffer_flits, routing)

    def _set_topology(self, kind: str, params: Dict[str, object],
                      num_slots: int, be_buffer_flits: int,
                      routing: Optional[Union[str, RoutingStrategy]],
                      default_routing: Union[str, RoutingStrategy] = "auto"
                      ) -> "SystemBuilder":
        if kind != "custom":
            self._custom_topo = None
        self._topology_kind = kind
        self._topology_params = params
        self._num_slots = num_slots
        self._be_buffer_flits = be_buffer_flits
        if routing is not None:
            self._routing = routing
            self._routing_explicit = True
        elif not self._routing_explicit:
            # Topology defaults never override an explicit routing() call,
            # whichever came first.
            self._routing = default_routing
        return self

    def routing(self, strategy: Union[str, RoutingStrategy]) -> "SystemBuilder":
        """Set the system-wide routing strategy (name or instance).

        Equivalent to the ``routing=`` keyword of the topology methods and
        order-independent with them; per-connection overrides go through
        ``connect(..., routing=...)``.
        """
        self._routing = strategy
        self._routing_explicit = True
        return self

    def slot_policy(self, policy: str) -> "SystemBuilder":
        """Set the TDMA slot allocation policy.

        ``"spread"`` (default) spaces each channel's slots evenly over the
        table, minimizing injection jitter; ``"contiguous"`` reserves
        consecutive runs, letting the NI packetize one header per run
        (longer packets, lower header overhead) and the batched pipeline
        forward whole bursts.  Falls back per channel to the spread choice
        when no long-enough contiguous run is free.
        """
        if policy not in ("spread", "contiguous"):
            raise BuilderError(f"unknown slot policy {policy!r}")
        self._slot_policy = policy
        return self

    # -------------------------------------------------------------- options
    def with_sim(self, sim: Simulator) -> "SystemBuilder":
        """Build onto an existing simulator (default: a fresh one)."""
        self._sim = sim
        return self

    def trace(self, tracer: Optional[Tracer] = None) -> "SystemBuilder":
        """Record trace events (routers, links, shells) during simulation."""
        self._tracer = tracer if tracer is not None else Tracer()
        return self

    def observe(self, *targets: str, period: int = 32,
                capture_depth: int = 64,
                series_cap: int = 1024) -> "SystemBuilder":
        """Attach the probe network (``System.obs``) to the built system.

        ``targets`` selects probe families from
        :data:`repro.obs.OBS_TARGETS` (``"links"``, ``"routers"``,
        ``"nis"``, ``"dram"``, ``"faults"``); no arguments means all of
        them.  ``period`` is the metrics-sampling stride in flit cycles,
        ``capture_depth`` the per-probe change-capture ring size and
        ``series_cap`` the retained-samples bound past which the timeline
        decimates (stride doubles).  Systems built without this call
        instantiate no observability machinery at all — runs stay
        byte-identical (see BUILDING.md "Observability").
        """
        chosen = tuple(dict.fromkeys(targets)) if targets else OBS_TARGETS
        unknown = [t for t in chosen if t not in OBS_TARGETS]
        if unknown:
            raise BuilderError(
                f"unknown observe target(s) {unknown!r} "
                f"(known: {', '.join(OBS_TARGETS)})")
        if period <= 0:
            raise BuilderError(
                f"observe period must be positive, got {period}")
        if capture_depth <= 0:
            raise BuilderError(
                f"observe capture_depth must be positive, got {capture_depth}")
        if series_cap < 2:
            raise BuilderError(
                f"observe series_cap must be at least 2, got {series_cap}")
        self._obs = _ObsDecl(targets=chosen, period=period,
                             capture_depth=capture_depth,
                             series_cap=series_cap)
        return self

    def options(self, *, router_slot_tables: Optional[bool] = None,
                strict_gt: Optional[bool] = None,
                deadlock_check: Optional[str] = None) -> "SystemBuilder":
        """Tune build-time behavior.

        ``deadlock_check`` controls the channel-dependency-graph analysis
        run over the declared best-effort routes at :meth:`build` time:
        ``"warn"`` (default) emits a
        :class:`~repro.analysis.deadlock.DeadlockWarning` on a cycle,
        ``"error"`` raises :class:`BuilderError`, ``"off"`` skips the
        analysis entirely.  Guaranteed-throughput connections are exempt
        (TDMA slots never block).
        """
        if router_slot_tables is not None:
            self._router_slot_tables = router_slot_tables
        if strict_gt is not None:
            self._strict_gt = strict_gt
        if deadlock_check is not None:
            if deadlock_check not in ("warn", "error", "off"):
                raise BuilderError(
                    f"unknown deadlock_check mode {deadlock_check!r} "
                    "(expected 'warn', 'error' or 'off')")
            self._deadlock_check = deadlock_check
        return self

    # ------------------------------------------------------ fault injection
    def inject_fault(self, at_cycle: int, a: Hashable, b: Hashable, *,
                     kind: str = "link_down",
                     until_cycle: Optional[int] = None,
                     drop_probability: float = 0.5,
                     seed: int = 1) -> "SystemBuilder":
        """Schedule a runtime fault on the link between ``a`` and ``b``.

        Endpoints are adjacent topology elements: two router nodes, or an
        NI attachment name and its router.  Both directions are affected.

        * ``kind="link_down"`` — the link fails permanently at ``at_cycle``
          (flit clock); give ``until_cycle`` to schedule a repair.
          Affected channels are rerouted over the surviving graph, GT
          reservations re-placed (or demoted to best-effort), and the
          rerouted route set re-checked for deadlock freedom.
        * ``kind="transient"`` — a seeded drop window over
          ``[at_cycle, until_cycle)``: each packet offered to the link is
          dropped with ``drop_probability``.  Pair with :meth:`retry` so
          the end-to-end retry layer absorbs the losses.

        Declaring any fault registers a
        :class:`~repro.faults.injector.FaultInjector` on the flit clock at
        build time; systems without faults instantiate nothing and run
        byte-identically to builds that predate the fault layer.
        """
        if kind == "link_down":
            self._fault_plan.link_down(at_cycle, a, b)
            if until_cycle is not None:
                self._fault_plan.repair(until_cycle, a, b)
        elif kind == "transient":
            if until_cycle is None:
                raise BuilderError(
                    "inject_fault(kind='transient') needs until_cycle "
                    "(the end of the drop window)")
            self._fault_plan.transient(at_cycle, until_cycle, a, b,
                                       drop_probability=drop_probability,
                                       seed=seed)
        else:
            raise BuilderError(
                f"unknown fault kind {kind!r} "
                "(expected 'link_down' or 'transient')")
        return self

    def fault_plan(self, plan: FaultPlan) -> "SystemBuilder":
        """Merge a pre-built :class:`~repro.faults.plan.FaultPlan`."""
        self._fault_plan.merge(plan)
        return self

    def retry(self, timeout_cycles: int, *, max_retries: int = 3,
              backoff: float = 2.0) -> "SystemBuilder":
        """Arm end-to-end retry on every master that doesn't set its own.

        A best-effort transaction expecting a response is retransmitted
        (same transaction id; late originals are suppressed as duplicates)
        when no response arrives within ``timeout_cycles`` IP cycles,
        backing off exponentially, up to ``max_retries`` times — after
        which it completes with ``ResponseError.TIMEOUT``.
        """
        self._retry_defaults = (timeout_cycles, max_retries, backoff)
        return self

    def configuration(self, mode: str) -> "SystemBuilder":
        """How declared connections are opened at build time.

        ``"functional"`` (default) applies register programs instantly;
        ``"centralized"`` issues them as DTL-MMIO writes over the NoC
        through the configuration module declared with
        :meth:`add_config_module` — run the system until idle to let them
        complete.
        """
        if mode not in ("functional", "centralized"):
            raise BuilderError(
                f"unknown configuration mode {mode!r} "
                "(expected 'functional' or 'centralized')")
        self._mode = mode
        return self

    # ------------------------------------------------------------------- IPs
    def add_master(self, name: str, router: Optional[Hashable] = None, *,
                   ni: Optional[str] = None, port: str = "p",
                   pattern: Optional[TrafficPattern] = None,
                   max_transactions: Optional[int] = None,
                   stop_cycle: Optional[int] = None,
                   queue_words: int = 8,
                   clock_mhz: float = DEFAULT_PORT_CLOCK_MHZ,
                   seq_latency_cycles: int = DEFAULT_SEQ_LATENCY,
                   max_outstanding: int = 16,
                   protocol: str = "dtl",
                   timeout_cycles: Optional[int] = None,
                   max_retries: Optional[int] = None,
                   retry_backoff: Optional[float] = None,
                   num_slots: Optional[int] = None,
                   be_arbiter: str = "round_robin",
                   max_packet_words: int = 23,
                   ip_name: Optional[str] = None,
                   shell_name: Optional[str] = None,
                   conn_name: Optional[str] = None) -> "SystemBuilder":
        """Declare a traffic-generating master IP behind its own NI.

        ``timeout_cycles`` arms this master's end-to-end retry layer
        (see :meth:`retry` for the builder-wide default and semantics).
        """
        self._decls.append(_MasterDecl(
            name=name, router=router, ni=ni or name, port=port,
            clock_mhz=clock_mhz, queue_words=queue_words, num_slots=num_slots,
            be_arbiter=be_arbiter, max_packet_words=max_packet_words,
            pattern=pattern, max_transactions=max_transactions,
            stop_cycle=stop_cycle, seq_latency_cycles=seq_latency_cycles,
            max_outstanding=max_outstanding, protocol=protocol,
            timeout_cycles=timeout_cycles, max_retries=max_retries,
            retry_backoff=retry_backoff,
            ip_name=ip_name or name,
            shell_name=shell_name or f"{name}_shell",
            conn_name=conn_name or f"{name}_conn"))
        return self

    def add_memory(self, name: str, router: Optional[Hashable] = None, *,
                   ni: Optional[str] = None, port: str = "p",
                   words: int = 0, latency: int = 1,
                   transactions_per_cycle: int = 1,
                   queue_words: int = 8,
                   clock_mhz: float = DEFAULT_PORT_CLOCK_MHZ,
                   scheduling: str = "queue_fill",
                   protocol: str = "dtl",
                   backend: str = "ideal",
                   timing: Union[str, DRAMTiming] = "default",
                   scheduler: str = "fcfs",
                   banks: Optional[int] = None,
                   row_words: Optional[int] = None,
                   num_slots: Optional[int] = None,
                   be_arbiter: str = "round_robin",
                   max_packet_words: int = 23,
                   ip_name: Optional[str] = None,
                   shell_name: Optional[str] = None,
                   conn_name: Optional[str] = None) -> "SystemBuilder":
        """Declare a memory slave behind its own NI.

        A memory referenced by several connections is automatically put
        behind a multi-connection shell (``scheduling`` selects its
        arbitration policy — distinct from the DRAM request ``scheduler``
        below).

        ``backend`` selects the execution model behind the shell:

        * ``"ideal"`` (default) — :class:`~repro.ip.slave.MemorySlave` with
          the fixed ``latency`` in IP cycles;
        * ``"dram"`` — a banked :class:`~repro.mem.slave.DRAMBackedSlave`
          with open-row state and tRCD/tRP/tCL/tRAS/refresh timing.
          ``timing`` is a preset name (``default`` / ``fast`` / ``slow``)
          or a :class:`~repro.mem.timing.DRAMTiming`; ``scheduler`` is
          ``"fcfs"`` (in-order) or ``"frfcfs"`` (open-page first-ready);
          ``banks`` / ``row_words`` override the geometry.  The ideal-only
          knobs (``latency``, ``transactions_per_cycle``) are rejected —
          service time comes from the device model.
        """
        self._decls.append(_MemoryDecl(
            name=name, router=router, ni=ni or name, port=port,
            clock_mhz=clock_mhz, queue_words=queue_words, num_slots=num_slots,
            be_arbiter=be_arbiter, max_packet_words=max_packet_words,
            words=words, latency=latency,
            transactions_per_cycle=transactions_per_cycle,
            scheduling=scheduling, protocol=protocol,
            backend=backend, timing=timing, dram_scheduler=scheduler,
            banks=banks, row_words=row_words,
            ip_name=ip_name or name,
            shell_name=shell_name or f"{name}_shell",
            conn_name=conn_name or f"{name}_conn"))
        return self

    def add_node(self, name: str, router: Optional[Hashable] = None, *,
                 channels: int = 1, port: str = "data", kind: str = "master",
                 cnip: bool = False, queue_words: int = 8,
                 clock_mhz: float = DEFAULT_PORT_CLOCK_MHZ,
                 num_slots: Optional[int] = None,
                 be_arbiter: str = "round_robin",
                 max_packet_words: int = 23) -> "SystemBuilder":
        """Declare a bare NI with no IP attached (shells are added later).

        With ``cnip=True`` the NI additionally gets a configuration port
        whose register file the configuration module (see
        :meth:`add_config_module`) can program over the NoC — the Figure 8
        data-NI shape.  ``channels=0`` declares a CNIP-only NI.
        """
        self._decls.append(_NodeDecl(
            name=name, router=router, ni=name, port=port,
            clock_mhz=clock_mhz, queue_words=queue_words, num_slots=num_slots,
            be_arbiter=be_arbiter, max_packet_words=max_packet_words,
            channels=channels, kind=kind, cnip=cnip))
        return self

    def add_config_module(self, name: str = "cfg",
                          router: Optional[Hashable] = None, *,
                          port: str = "cfg", queue_words: int = 8,
                          clock_mhz: float = DEFAULT_PORT_CLOCK_MHZ,
                          num_slots: Optional[int] = None,
                          be_arbiter: str = "round_robin",
                          max_packet_words: int = 23) -> "SystemBuilder":
        """Declare the centralized configuration module (Figure 8).

        Its NI gets one configuration channel per CNIP node declared with
        ``add_node(..., cnip=True)``; :meth:`build` bootstraps those
        configuration connections exactly as in Figure 9 and returns a
        :class:`~repro.config.manager.CentralizedConfigurationManager` on
        the :class:`System` handle.
        """
        self._decls.append(_ConfigDecl(
            name=name, router=router, ni=name, port=port,
            clock_mhz=clock_mhz, queue_words=queue_words, num_slots=num_slots,
            be_arbiter=be_arbiter, max_packet_words=max_packet_words))
        return self

    # ----------------------------------------------------------- connections
    def connect(self, master: str,
                slave: Union[str, Sequence[str]], *,
                name: Optional[str] = None,
                gt: bool = False, slots: Optional[int] = None,
                request_slots: Optional[int] = None,
                response_slots: Optional[int] = None,
                data_threshold: int = 1, credit_threshold: int = 1,
                narrowcast_ranges: Optional[Sequence] = None,
                multicast: bool = False,
                translate_addresses: bool = True,
                routing: Optional[Union[str, RoutingStrategy]] = None
                ) -> "SystemBuilder":
        """Declare a connection from ``master`` to one or more slaves.

        With a single slave this is a point-to-point connection.  With
        several slaves (or ``narrowcast_ranges``) the master's shell becomes
        a narrowcast shell: each ``(base, size)`` address range (bytes) maps
        onto the corresponding slave, in order.  With ``multicast=True``
        (and at least two slaves) it becomes a multicast shell instead:
        every slave executes every transaction, and acknowledged
        transactions complete once all slaves have responded (Section 2).

        ``gt=True`` reserves TDMA slots on both the request and response
        channels — ``slots`` for both directions, or ``request_slots`` /
        ``response_slots`` individually (default 2 each).

        ``routing`` overrides the system-wide routing strategy for every
        channel of this connection — a registered name (``"xy"``,
        ``"shortest"``, ``"torus"``) or a
        :class:`~repro.network.routing.RoutingStrategy` instance such as
        :class:`~repro.network.routing.TableRouting`.
        """
        if routing is not None:
            try:
                routing = make_routing(routing)
            except RouteError as exc:
                raise BuilderError(
                    f"connection {name or master!r}: {exc}") from None
        slaves = [slave] if isinstance(slave, str) else list(slave)
        if gt:
            base = 2 if slots is None else slots
            req = base if request_slots is None else request_slots
            resp = base if response_slots is None else response_slots
        else:
            req = resp = 0
        ranges: Optional[List[Tuple[int, int]]] = None
        if narrowcast_ranges is not None:
            ranges = []
            for entry in narrowcast_ranges:
                if isinstance(entry, AddressRange):
                    ranges.append((entry.base, entry.size))
                else:
                    base_addr, size = entry
                    ranges.append((int(base_addr), int(size)))
        self._connections.append(_ConnDecl(
            name=name or f"{master}->" + "+".join(slaves),
            master=master, slaves=slaves, gt=gt,
            request_slots=req, response_slots=resp,
            data_threshold=data_threshold, credit_threshold=credit_threshold,
            narrowcast_ranges=ranges, multicast=multicast,
            translate_addresses=translate_addresses, routing=routing))
        return self

    # ------------------------------------------------------------ validation
    def _build_topology(self) -> Topology:
        if self._topology_kind is None:
            raise BuilderError(
                "no topology declared: call mesh(rows, cols), "
                "ring(num_routers), torus(rows, cols), tree(arity, depth), "
                "double_ring(num_routers), custom_topology(topology) or "
                "single_router() before build()")
        if self._custom_topo is not None:
            topology = self._custom_topo
            # Re-capture the node/edge lists at build time so a graph the
            # caller extended after custom_topology() still matches the
            # elaborated spec.
            nodes, edges = topology.node_edge_lists()
            self._topology_params = {"nodes": nodes, "edges": edges,
                                     "name": topology.name}
        else:
            try:
                topology = make_topology(self._topology_kind,
                                         **self._topology_params)
            except TopologyError as exc:
                raise BuilderError(
                    f"{self._describe_topology()}: {exc}") from None
        if topology.num_routers == 0:
            raise BuilderError(
                f"{self._describe_topology()} has no routers; declare at "
                "least one")
        if not topology.is_connected():
            raise BuilderError(
                f"{self._describe_topology()} is not connected; every "
                "router must be reachable from every other (add bridging "
                "edges)")
        return topology

    def _validate(self, topology: Topology) -> None:
        # Routing strategies must resolve (system-wide and per-connection).
        try:
            make_routing(self._routing)
        except RouteError as exc:
            raise BuilderError(str(exc)) from None
        # Unique declaration and NI names.
        seen_names: Dict[str, str] = {}
        seen_nis: Dict[str, str] = {}
        for decl in self._decls:
            kind = type(decl).__name__.strip("_").replace("Decl", "").lower()
            if decl.name in seen_names:
                raise BuilderError(
                    f"duplicate IP/NI name {decl.name!r}: already declared "
                    f"as a {seen_names[decl.name]}")
            seen_names[decl.name] = kind
            if decl.ni in seen_nis:
                raise BuilderError(
                    f"NI name {decl.ni!r} of {kind} {decl.name!r} collides "
                    f"with {seen_nis[decl.ni]!r}")
            seen_nis[decl.ni] = decl.name
        # Routers must exist in the topology.
        nodes = list(topology.routers)
        for decl in self._decls:
            if decl.router is not None and decl.router not in topology.graph:
                raise BuilderError(
                    f"{decl.name!r}: router {decl.router!r} is not part of "
                    f"the {self._describe_topology()} (routers: "
                    f"{nodes[:8]}{'...' if len(nodes) > 8 else ''})")
        # Memory backend declarations.
        for decl in self._decls:
            if isinstance(decl, _MemoryDecl):
                self._validate_memory_backend(decl)
        # Connection endpoints.
        masters = {d.name: d for d in self._decls
                   if isinstance(d, _MasterDecl)}
        memories = {d.name: d for d in self._decls
                    if isinstance(d, _MemoryDecl)}
        masters_used: Dict[str, str] = {}
        conn_names: Dict[str, bool] = {}
        for conn in self._connections:
            if conn.name in conn_names:
                raise BuilderError(f"duplicate connection name {conn.name!r}")
            conn_names[conn.name] = True
            if not conn.slaves:
                raise BuilderError(
                    f"connection {conn.name!r}: needs at least one slave "
                    "endpoint")
            if conn.master not in masters:
                hint = (" (declared as a memory; only masters can open "
                        "connections)" if conn.master in memories else
                        f" (known masters: {sorted(masters) or '<none>'})")
                raise BuilderError(
                    f"connection {conn.name!r}: unknown master endpoint "
                    f"{conn.master!r}{hint}")
            for slave_name in conn.slaves:
                if slave_name not in memories:
                    hint = (" (declared as a master; connections target "
                            "memories)" if slave_name in masters else
                            f" (known memories: {sorted(memories) or '<none>'})")
                    raise BuilderError(
                        f"connection {conn.name!r}: unknown slave endpoint "
                        f"{slave_name!r}{hint}")
            if conn.master in masters_used:
                raise BuilderError(
                    f"master {conn.master!r} is used by connections "
                    f"{masters_used[conn.master]!r} and {conn.name!r}; a "
                    "master drives one connection — use a single narrowcast "
                    "connection (several slaves) to reach multiple memories")
            masters_used[conn.master] = conn.name
            if conn.gt and (conn.request_slots <= 0
                            or conn.response_slots <= 0):
                raise BuilderError(
                    f"connection {conn.name!r}: gt=True needs at least one "
                    "slot per direction (slots / request_slots / "
                    "response_slots)")
            if conn.multicast:
                if conn.narrowcast_ranges is not None:
                    raise BuilderError(
                        f"connection {conn.name!r}: multicast=True duplicates "
                        "every transaction onto all slaves — it cannot be "
                        "combined with narrowcast_ranges (pick one)")
                if len(conn.slaves) < 2:
                    raise BuilderError(
                        f"connection {conn.name!r}: multicast=True needs at "
                        "least two slave endpoints (one master, multiple "
                        "slaves all executing each transaction); use a plain "
                        "connect() for a single slave")
            elif len(conn.slaves) > 1 or conn.narrowcast_ranges is not None:
                if conn.narrowcast_ranges is None:
                    raise BuilderError(
                        f"connection {conn.name!r}: several slaves need "
                        "narrowcast_ranges=[(base, size), ...] mapping the "
                        "shared address space onto them (or multicast=True "
                        "to have every slave execute every transaction)")
                if len(conn.narrowcast_ranges) != len(conn.slaves):
                    raise BuilderError(
                        f"connection {conn.name!r}: {len(conn.narrowcast_ranges)} "
                        f"narrowcast ranges for {len(conn.slaves)} slaves "
                        "(need exactly one range per slave, in slave order)")
        # GT slot demand versus the slot-table size.
        self._validate_gt_demand(masters, memories)
        # Centralized configuration needs a configuration module.
        has_config = any(isinstance(d, _ConfigDecl) for d in self._decls)
        if self._mode == "centralized" and not has_config:
            raise BuilderError(
                "configuration('centralized') needs add_config_module(); "
                "declare one (and CNIP nodes) or use functional mode")

    def _validate_memory_backend(self, decl: _MemoryDecl) -> None:
        if decl.backend not in ("ideal", "dram"):
            raise BuilderError(
                f"memory {decl.name!r}: unknown backend {decl.backend!r} "
                "(expected 'ideal' or 'dram')")
        if decl.backend == "ideal":
            dram_only = [label for label, value, default in (
                ("timing", decl.timing, "default"),
                ("scheduler", decl.dram_scheduler, "fcfs"),
                ("banks", decl.banks, None),
                ("row_words", decl.row_words, None)) if value != default]
            if dram_only:
                raise BuilderError(
                    f"memory {decl.name!r}: {', '.join(dram_only)} only "
                    "apply to backend='dram' (the ideal backend models a "
                    "fixed latency; pass latency=... instead)")
            return
        ideal_only = [label for label, value, default in (
            ("latency", decl.latency, 1),
            ("transactions_per_cycle", decl.transactions_per_cycle, 1))
            if value != default]
        if ideal_only:
            raise BuilderError(
                f"memory {decl.name!r}: {', '.join(ideal_only)} only apply "
                "to backend='ideal' — the DRAM backend derives service time "
                "from the device state (pass timing=... / scheduler=... "
                "instead)")
        try:
            resolve_timing(decl.timing)
            make_scheduler(decl.dram_scheduler)
            make_geometry(banks=decl.banks, row_words=decl.row_words)
        except (TimingError, SchedulerError) as exc:
            raise BuilderError(f"memory {decl.name!r}: {exc}") from None

    def _validate_gt_demand(self, masters: Dict[str, _MasterDecl],
                            memories: Dict[str, _MemoryDecl]) -> None:
        demand: Dict[str, int] = {}

        def add(decl: _IPDecl, slots: int, conn_name: str) -> None:
            ni_slots = decl.num_slots or self._num_slots
            if slots > ni_slots:
                raise BuilderError(
                    f"connection {conn_name!r}: {slots} GT slots requested "
                    f"but NI {decl.ni!r} has a {ni_slots}-slot table")
            demand[decl.ni] = demand.get(decl.ni, 0) + slots
            if demand[decl.ni] > ni_slots:
                raise BuilderError(
                    f"GT slot demand at NI {decl.ni!r} is {demand[decl.ni]} "
                    f"slots but its slot table has only {ni_slots} "
                    f"(num_slots={ni_slots}); lower the per-connection slot "
                    "counts or enlarge the slot table")

        for conn in self._connections:
            if not conn.gt:
                continue
            master = masters[conn.master]
            for slave_name in conn.slaves:
                add(master, conn.request_slots, conn.name)
                add(memories[slave_name], conn.response_slots, conn.name)

    def _describe_topology(self) -> str:
        params = self._topology_params
        if self._topology_kind in ("mesh", "torus"):
            return (f"{params.get('rows')}x{params.get('cols')} "
                    f"{self._topology_kind}")
        if self._topology_kind == "ring":
            return f"{params.get('num_routers')}-router ring"
        if self._topology_kind == "double_ring":
            return f"{params.get('num_routers')}-stop double ring"
        if self._topology_kind == "tree":
            return (f"{params.get('arity')}-ary depth-"
                    f"{params.get('depth')} tree")
        if self._topology_kind == "custom":
            return f"custom topology {params.get('name', 'custom')!r}"
        if self._topology_kind == "single":
            return "single-router topology"
        return f"{self._topology_kind} topology"

    # ------------------------------------------------------------ elaboration
    def build(self) -> System:
        """Validate and elaborate the declaration into a runnable system."""
        topology = self._build_topology()
        self._validate(topology)
        nodes = list(topology.routers)
        self._auto_router = 0

        masters = {d.name: d for d in self._decls if isinstance(d, _MasterDecl)}
        memories = {d.name: d for d in self._decls if isinstance(d, _MemoryDecl)}
        cnip_nodes = [d for d in self._decls
                      if isinstance(d, _NodeDecl) and d.cnip]
        config_decl = next((d for d in self._decls
                            if isinstance(d, _ConfigDecl)), None)

        # Which connection (if any) drives each master / references each
        # memory; memory channel indices are assigned in connection order.
        master_conn: Dict[str, _ConnDecl] = {}
        memory_conns: Dict[str, List[Tuple[_ConnDecl, int]]] = {}
        for conn in self._connections:
            master_conn[conn.master] = conn
            for slave_index, slave_name in enumerate(conn.slaves):
                memory_conns.setdefault(slave_name, []).append(
                    (conn, slave_index))

        spec = self._elaborate_spec(nodes, master_conn, memory_conns,
                                    cnip_nodes, config_decl)
        model = build_system(spec, sim=self._sim,
                             router_slot_tables=self._router_slot_tables,
                             strict_gt=self._strict_gt, tracer=self._tracer)

        # Deadlock safety net for the declared best-effort routes (GT
        # channels move on reserved TDMA slots and cannot block).
        deadlock_report = self._check_deadlock(model, masters, memories)

        # Attach shells and IP modules in declaration order.
        master_handles: Dict[str, MasterHandle] = {}
        memory_handles: Dict[str, MemoryHandle] = {}
        config_shell: Optional[ConfigShell] = None
        cnip_slaves: Dict[str, ConfigurationSlave] = {}
        for decl in self._decls:
            if isinstance(decl, _MasterDecl):
                master_handles[decl.name] = self._attach_master(
                    model, decl, master_conn.get(decl.name), memories)
            elif isinstance(decl, _MemoryDecl):
                memory_handles[decl.name] = self._attach_memory(
                    model, decl, memory_conns.get(decl.name, []))
            elif isinstance(decl, _ConfigDecl):
                config_shell = self._attach_config_shell(model, decl,
                                                         cnip_nodes)
            elif isinstance(decl, _NodeDecl) and decl.cnip:
                cnip_slaves[decl.name] = self._attach_cnip(model, decl)

        # Bootstrap configuration connections (Figure 9) and build the
        # centralized manager once every CNIP slave exists.
        config_manager: Optional[CentralizedConfigurationManager] = None
        bootstrap_ops = 0
        if config_decl is not None and config_shell is not None:
            for index, node in enumerate(cnip_nodes):
                bootstrap_ops += bootstrap_configuration_connection(
                    config_shell=config_shell, noc=model.noc,
                    local_kernel=model.kernel(config_decl.ni),
                    local_channel=index, remote_name=node.ni,
                    remote_kernel=model.kernel(node.ni), remote_channel=0)
            config_manager = CentralizedConfigurationManager(
                noc=model.noc, kernels=model.kernels,
                config_shell=config_shell, allocator=model.allocator)

        # Open every declared connection.
        configurator = model.functional_configurator()
        connections: Dict[str, ConnectionInfo] = {}
        for conn in self._connections:
            conn_spec = self._connection_spec(conn, masters, memories,
                                              memory_conns)
            info = ConnectionInfo(name=conn.name, spec=conn_spec, gt=conn.gt)
            if self._mode == "centralized":
                info.handle = config_manager.open_connection(conn_spec)
                info.slot_assignment = dict(info.handle.slot_assignment)
            else:
                configurator.open_connection(model.noc, conn_spec)
                if model.allocator is not None:
                    for src, _dst, _slots in conn_spec.gt_channel_requests():
                        allocation = model.allocator.allocation_of(
                            src.ni, src.channel)
                        if allocation is not None:
                            info.slot_assignment[(src.ni, src.channel)] = \
                                list(allocation.injection_slots)
            connections[conn.name] = info

        # Runtime fault handling — instantiated only when faults are
        # declared, so no-fault builds stay byte-identical (no extra
        # clocked components, no extra wakes).
        fault_manager: Optional[FaultManager] = None
        if self._fault_plan:
            fault_manager = FaultManager(
                noc=model.noc, kernels=model.kernels,
                allocator=model.allocator, connections=connections,
                masters=master_handles,
                deadlock_check=self._deadlock_check)
            injector = FaultInjector(fault_manager, self._fault_plan)
            model.noc.flit_clock.add_component(injector)
            # Batched bursts must fully drain before any scheduled fault
            # event applies: hand every kernel the injector's barrier so
            # burst formation truncates at the event horizon.
            for kernel in model.kernels.values():
                kernel.burst_barrier = injector.barrier

        # Per-link flits/cycle sliding-window meters feeding
        # ``System.health_report()["links"]``.
        for link in model.noc.links.values():
            link.attach_meter()

        # The probe network — like faults, instantiated only when declared,
        # so no-obs builds stay byte-identical (no sampler on the clock, no
        # burst barrier, no probe state).
        observatory: Optional[Observatory] = None
        if self._obs is not None:
            dram_controllers = {
                name: handle.dram.controller
                for name, handle in memory_handles.items()
                if handle.backend == "dram"}
            observatory = build_observatory(
                model, targets=self._obs.targets, period=self._obs.period,
                capture_depth=self._obs.capture_depth,
                series_cap=self._obs.series_cap,
                dram_controllers=dram_controllers)
            model.noc.flit_clock.add_component(observatory.sampler)
            # Samples must observe drained pipelines: hand every kernel the
            # sampler's barrier so batched bursts truncate at the next
            # sample cycle (the same invariant fault events rely on).
            for kernel in model.kernels.values():
                kernel.obs_barrier = observatory.sampler.barrier
            if fault_manager is not None:
                observatory.bind_faults(fault_manager)

        return System(model=model, masters=master_handles,
                      memories=memory_handles, connections=connections,
                      configurator=configurator, config_shell=config_shell,
                      config_manager=config_manager, cnip_slaves=cnip_slaves,
                      bootstrap_operations=bootstrap_ops,
                      configuration_mode=self._mode,
                      tracer=self._tracer,
                      deadlock_report=deadlock_report,
                      fault_manager=fault_manager,
                      deadlock_check=self._deadlock_check,
                      obs=observatory)

    def _check_deadlock(self, model: SystemModel,
                        masters: Dict[str, _MasterDecl],
                        memories: Dict[str, _MemoryDecl]
                        ) -> Optional[DeadlockReport]:
        """Channel-dependency-graph analysis of the declared BE routes."""
        if self._deadlock_check == "off":
            return None
        routes: List[Tuple[str, str, str, Optional[object]]] = []
        for conn in self._connections:
            if conn.gt:
                continue
            master_ni = masters[conn.master].ni
            for slave_name in conn.slaves:
                slave_ni = memories[slave_name].ni
                routes.append((f"{conn.name}:request", master_ni, slave_ni,
                               conn.routing))
                routes.append((f"{conn.name}:response", slave_ni, master_ni,
                               conn.routing))
        report = analyze_noc_routes(model.noc, routes)
        if not report.ok:
            message = (f"system {self.name!r}: {report.describe()}")
            if self._deadlock_check == "error":
                raise BuilderError(
                    message + " — or relax the gate with "
                    "options(deadlock_check='warn'/'off')")
            warnings.warn(message, DeadlockWarning, stacklevel=3)
        return report

    # ----------------------------------------------------- elaboration detail
    def _place(self, decl: _IPDecl, nodes: List[Hashable]) -> Hashable:
        """Router of a declaration; unplaced IPs round-robin over routers."""
        if decl.router is not None:
            return decl.router
        router = nodes[self._auto_router % len(nodes)]
        self._auto_router += 1
        return router

    def _elaborate_spec(self, nodes: List[Hashable],
                        master_conn: Dict[str, _ConnDecl],
                        memory_conns: Dict[str, List[Tuple[_ConnDecl, int]]],
                        cnip_nodes: List[_NodeDecl],
                        config_decl: Optional[_ConfigDecl]) -> NoCSpec:
        ni_specs: List[NISpec] = []
        for decl in self._decls:
            router = self._place(decl, nodes)
            num_slots = decl.num_slots or self._num_slots
            qw = decl.queue_words
            if isinstance(decl, _MasterDecl):
                conn = master_conn.get(decl.name)
                num_channels = (len(conn.slaves)
                                if conn is not None and len(conn.slaves) > 1
                                else 1)
                if conn is not None and conn.multicast:
                    shell = "multicast"
                elif conn is not None and (len(conn.slaves) > 1
                                           or conn.narrowcast_ranges
                                           is not None):
                    shell = "narrowcast"
                else:
                    shell = "p2p"
                ports = [PortSpec(name=decl.port, kind="master", shell=shell,
                                  protocol=decl.protocol,
                                  clock_mhz=decl.clock_mhz,
                                  channels=[ChannelSpec(qw, qw)
                                            for _ in range(num_channels)])]
            elif isinstance(decl, _MemoryDecl):
                refs = memory_conns.get(decl.name, [])
                num_channels = max(len(refs), 1)
                shell = "multiconnection" if len(refs) > 1 else "p2p"
                ports = [PortSpec(name=decl.port, kind="slave", shell=shell,
                                  protocol=decl.protocol,
                                  clock_mhz=decl.clock_mhz,
                                  channels=[ChannelSpec(qw, qw)
                                            for _ in range(num_channels)])]
            elif isinstance(decl, _ConfigDecl):
                cnq = max(qw, MIN_CNIP_QUEUE_WORDS)
                ports = [PortSpec(name=decl.port, kind="master", shell=None,
                                  clock_mhz=decl.clock_mhz,
                                  channels=[ChannelSpec(cnq, cnq)
                                            for _ in cnip_nodes])]
            else:  # _NodeDecl
                ports = []
                if decl.cnip:
                    cnq = max(qw, MIN_CNIP_QUEUE_WORDS)
                    ports.append(PortSpec(name="cnip", kind="config",
                                          shell="config",
                                          clock_mhz=decl.clock_mhz,
                                          channels=[ChannelSpec(cnq, cnq)]))
                if decl.channels > 0:
                    ports.append(PortSpec(name=decl.port, kind=decl.kind,
                                          shell=None,
                                          clock_mhz=decl.clock_mhz,
                                          channels=[ChannelSpec(qw, qw)
                                                    for _ in
                                                    range(decl.channels)]))
            ni_specs.append(NISpec(name=decl.ni, router=router,
                                   num_slots=num_slots,
                                   be_arbiter=decl.be_arbiter,
                                   max_packet_words=decl.max_packet_words,
                                   ports=ports))
        params = self._topology_params
        if self._topology_kind in ("mesh", "torus"):
            rows, cols = int(params["rows"]), int(params["cols"])
        elif self._topology_kind == "ring":
            # Legacy spec encoding kept for compatibility: a ring was
            # historically stored as (rows=1, cols=n); the authoritative
            # size now lives in topology_params["num_routers"].
            rows, cols = 1, int(params["num_routers"])
        else:
            rows, cols = 1, max(len(nodes), 1)
        return NoCSpec(name=self.name, topology=self._topology_kind,
                       rows=rows, cols=cols,
                       num_slots=self._num_slots,
                       be_buffer_flits=self._be_buffer_flits,
                       routing=self._routing,
                       slot_policy=self._slot_policy,
                       topology_params=dict(params), nis=ni_specs)

    def _attach_master(self, model: SystemModel, decl: _MasterDecl,
                       conn: Optional[_ConnDecl],
                       memories: Dict[str, _MemoryDecl]) -> MasterHandle:
        clock = model.port_clock(decl.ni, decl.port)
        port = model.kernel(decl.ni).port(decl.port)
        if conn is not None and conn.multicast:
            conn_shell: ConnectionShell = MulticastShell(
                decl.conn_name, port, tracer=self._tracer)
        elif conn is not None and (len(conn.slaves) > 1
                                   or conn.narrowcast_ranges is not None):
            ranges = [AddressRange(base=base, size=size, conn=index)
                      for index, (base, size)
                      in enumerate(conn.narrowcast_ranges)]
            conn_shell = NarrowcastShell(
                decl.conn_name, port, address_ranges=ranges,
                translate_addresses=conn.translate_addresses,
                tracer=self._tracer)
        else:
            conn_shell = PointToPointShell(decl.conn_name, port,
                                           role="master",
                                           tracer=self._tracer)
        defaults = self._retry_defaults or (None, 3, 2.0)
        timeout_cycles = (decl.timeout_cycles if decl.timeout_cycles
                          is not None else defaults[0])
        max_retries = (decl.max_retries if decl.max_retries is not None
                       else defaults[1])
        retry_backoff = (decl.retry_backoff if decl.retry_backoff is not None
                         else defaults[2])
        shell = MasterShell(decl.shell_name, conn_shell,
                            protocol=decl.protocol,
                            seq_latency_cycles=decl.seq_latency_cycles,
                            max_outstanding=decl.max_outstanding,
                            timeout_cycles=timeout_cycles,
                            max_retries=max_retries,
                            retry_backoff=retry_backoff,
                            tracer=self._tracer)
        ip = TrafficGeneratorMaster(decl.ip_name, shell, pattern=decl.pattern,
                                    max_transactions=decl.max_transactions,
                                    stop_cycle=decl.stop_cycle)
        for component in (ip, shell, conn_shell):
            clock.add_component(component)
        return MasterHandle(name=decl.name, ni=decl.ni, port=decl.port,
                            ip=ip, shell=shell, conn_shell=conn_shell,
                            clock=clock)

    def _attach_memory(self, model: SystemModel, decl: _MemoryDecl,
                       refs: List[Tuple[_ConnDecl, int]]) -> MemoryHandle:
        clock = model.port_clock(decl.ni, decl.port)
        port = model.kernel(decl.ni).port(decl.port)
        if len(refs) > 1:
            conn_shell: ConnectionShell = MultiConnectionShell(
                decl.conn_name, port, scheduling=decl.scheduling,
                tracer=self._tracer)
        else:
            conn_shell = PointToPointShell(decl.conn_name, port, role="slave",
                                           tracer=self._tracer)
        if decl.backend == "dram":
            ip: SlaveIP = DRAMBackedSlave(
                decl.ip_name, memory=SharedMemory(decl.words),
                timing=decl.timing, banks=decl.banks,
                row_words=decl.row_words, scheduler=decl.dram_scheduler)
        else:
            ip = MemorySlave(decl.ip_name, memory=SharedMemory(decl.words),
                             latency_cycles=decl.latency,
                             transactions_per_cycle=decl.transactions_per_cycle)
        shell = SlaveShell(decl.shell_name, conn_shell, ip,
                           protocol=decl.protocol, tracer=self._tracer)
        for component in (conn_shell, shell, ip):
            clock.add_component(component)
        return MemoryHandle(name=decl.name, ni=decl.ni, port=decl.port,
                            ip=ip, shell=shell, conn_shell=conn_shell,
                            clock=clock)

    def _attach_config_shell(self, model: SystemModel, decl: _ConfigDecl,
                             cnip_nodes: List[_NodeDecl]) -> ConfigShell:
        clock = model.port_clock(decl.ni, decl.port)
        conn_shell = ConnectionShell(f"{decl.name}_conn",
                                     model.kernel(decl.ni).port(decl.port),
                                     role="master", tracer=self._tracer)
        remote_conns = {node.ni: index
                        for index, node in enumerate(cnip_nodes)}
        shell = ConfigShell(f"{decl.name}_shell",
                            local_kernel=model.kernel(decl.ni),
                            shell=conn_shell, remote_conns=remote_conns)
        clock.add_component(conn_shell)
        clock.add_component(shell)
        return shell

    def _attach_cnip(self, model: SystemModel,
                     decl: _NodeDecl) -> ConfigurationSlave:
        clock = model.port_clock(decl.ni, "cnip")
        conn = PointToPointShell(f"{decl.ni}_cnip_conn",
                                 model.kernel(decl.ni).port("cnip"),
                                 role="slave", tracer=self._tracer)
        slave = ConfigurationSlave(model.kernel(decl.ni))
        shell = SlaveShell(f"{decl.ni}_cnip_shell", conn, slave)
        clock.add_component(conn)
        clock.add_component(shell)
        return slave

    def _connection_spec(self, conn: _ConnDecl,
                         masters: Dict[str, _MasterDecl],
                         memories: Dict[str, _MemoryDecl],
                         memory_conns: Dict[str, List[Tuple[_ConnDecl, int]]]
                         ) -> ConnectionSpec:
        master = masters[conn.master]
        if conn.multicast:
            kind = "multicast"
        elif len(conn.slaves) > 1 or conn.narrowcast_ranges is not None:
            kind = "narrowcast"
        else:
            kind = "p2p"
        pairs: List[ChannelPairSpec] = []
        for master_channel, slave_name in enumerate(conn.slaves):
            memory = memories[slave_name]
            # The memory-side channel is this connection's position among
            # every connection referencing that memory.
            refs = memory_conns[slave_name]
            slave_channel = next(
                index for index, (ref_conn, ref_slave_index)
                in enumerate(refs)
                if ref_conn is conn and ref_slave_index == master_channel)
            pairs.append(ChannelPairSpec(
                master=ChannelEndpointRef(master.ni, master_channel),
                slave=ChannelEndpointRef(memory.ni, slave_channel),
                request_gt=conn.gt, request_slots=conn.request_slots,
                response_gt=conn.gt, response_slots=conn.response_slots,
                data_threshold=conn.data_threshold,
                credit_threshold=conn.credit_threshold))
        return ConnectionSpec(name=conn.name, kind=kind, pairs=pairs,
                              routing=conn.routing)
