"""Scenario registry: named, parameterized system descriptions.

One definition per scenario, shared by the functional tests, the examples
and the performance benchmark suite (``benchmarks/perf/run_perf.py``).  Each
scenario is a factory that declares a system through
:class:`~repro.api.builder.SystemBuilder` and returns the built
:class:`~repro.api.builder.System`::

    from repro.api import scenarios

    system = scenarios.build("gt_be_mix", num_gt=2, num_be=2)
    system.run_flit_cycles(1000)

The four classic set-ups of the paper's experiments are registered
(``point_to_point``, ``gt_be_mix``, ``narrowcast``, ``config_system``) —
the legacy ``repro.testbench`` builders are thin wrappers over these —
plus newer workloads: a ``ring`` topology pipeline, ``hotspot`` traffic
into one shared memory (multi-connection shell), a seeded ``random_system``
generator, the topology-gallery scenarios ``torus_neighbor``,
``tree_hotspot`` and ``irregular_soc`` (the paper's ~10-router arbitrary
floorplan through ``custom_topology``), the DRAM-backed workloads, and the
perf-suite shapes ``idle_mesh``, ``saturated_mix``, ``saturated_grid`` and
``saturated_torus``.

Register your own with the decorator::

    from repro.api.scenarios import scenario

    @scenario("my_setup", description="...", tags=("functional",))
    def _my_setup(**params):
        return SystemBuilder("my_setup")...build()
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.api.builder import (
    DEFAULT_PORT_CLOCK_MHZ,
    System,
    SystemBuilder,
)
from repro.ip.traffic import (
    BurstyTraffic,
    ConstantBitRateTraffic,
    RandomTraffic,
    TrafficPattern,
    VideoLineTraffic,
)
from repro.network.topology import Topology
from repro.sim.trace import Tracer


class ScenarioError(KeyError):
    """Raised for unknown scenario names."""


@dataclass
class Scenario:
    """A registered scenario: factory plus metadata."""

    name: str
    factory: Callable[..., System]
    description: str = ""
    tags: Tuple[str, ...] = ()
    defaults: Dict[str, object] = field(default_factory=dict)

    def build(self, **params) -> System:
        merged = dict(self.defaults)
        merged.update(params)
        return self.factory(**merged)


_REGISTRY: Dict[str, Scenario] = {}


def scenario(name: str, description: str = "",
             tags: Tuple[str, ...] = (),
             **defaults) -> Callable[[Callable[..., System]],
                                     Callable[..., System]]:
    """Decorator registering a scenario factory under ``name``."""

    def decorator(factory: Callable[..., System]) -> Callable[..., System]:
        register(name, factory, description=description, tags=tags,
                 **defaults)
        return factory

    return decorator


def register(name: str, factory: Callable[..., System],
             description: str = "", tags: Tuple[str, ...] = (),
             **defaults) -> Scenario:
    """Register (or replace) a scenario factory under ``name``."""
    entry = Scenario(name=name, factory=factory, description=description,
                     tags=tuple(tags), defaults=dict(defaults))
    _REGISTRY[name] = entry
    return entry


def get(name: str) -> Scenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ScenarioError(
            f"unknown scenario {name!r} (registered: {known})") from None


def names(tag: Optional[str] = None) -> List[str]:
    """Registered scenario names, optionally filtered by tag."""
    return sorted(name for name, entry in _REGISTRY.items()
                  if tag is None or tag in entry.tags)


def build(name: str, **params) -> System:
    """Build the named scenario with the given parameter overrides."""
    return get(name).build(**params)


def describe() -> List[Tuple[str, str, Tuple[str, ...]]]:
    """(name, description, tags) rows for every registered scenario."""
    return [(entry.name, entry.description, entry.tags)
            for _, entry in sorted(_REGISTRY.items())]


# ---------------------------------------------------------------------------
# The four classic set-ups (the legacy testbench builders wrap these)
# ---------------------------------------------------------------------------
@scenario("point_to_point",
          description="One master talking to one memory over a small mesh "
                      "(GT or BE) — the E2/E4/E5 shape.",
          tags=("functional", "classic"))
def _point_to_point(gt: bool = False, request_slots: int = 2,
                    response_slots: int = 2, num_slots: int = 8,
                    rows: int = 1, cols: int = 2, queue_words: int = 8,
                    max_packet_words: int = 23, data_threshold: int = 1,
                    credit_threshold: int = 1,
                    be_arbiter: str = "round_robin",
                    port_clock_mhz: float = DEFAULT_PORT_CLOCK_MHZ,
                    slave_latency: int = 1,
                    pattern: Optional[TrafficPattern] = None,
                    max_transactions: Optional[int] = None,
                    memory_words: int = 0,
                    seq_latency_cycles: int = 2) -> System:
    if pattern is None:
        pattern = ConstantBitRateTraffic(period_cycles=16, burst_words=4,
                                         write=True)
    return (SystemBuilder("p2p_tb")
            .mesh(rows, cols, num_slots=num_slots)
            .add_master("master", router=(0, 0), ni="ni_m",
                        shell_name="m_shell", conn_name="m_conn",
                        pattern=pattern, max_transactions=max_transactions,
                        queue_words=queue_words, clock_mhz=port_clock_mhz,
                        seq_latency_cycles=seq_latency_cycles,
                        num_slots=num_slots, be_arbiter=be_arbiter,
                        max_packet_words=max_packet_words)
            .add_memory("memory", router=(0, cols - 1), ni="ni_s",
                        shell_name="s_shell", conn_name="s_conn",
                        words=memory_words, latency=slave_latency,
                        queue_words=queue_words, clock_mhz=port_clock_mhz,
                        num_slots=num_slots, be_arbiter=be_arbiter,
                        max_packet_words=max_packet_words)
            .connect("master", "memory", name="tb", gt=gt,
                     request_slots=request_slots if gt else None,
                     response_slots=response_slots if gt else None,
                     data_threshold=data_threshold,
                     credit_threshold=credit_threshold)
            .build())


@scenario("gt_be_mix",
          description="Guaranteed and best-effort master/slave pairs whose "
                      "traffic shares one inter-router link (experiment E10).",
          tags=("functional", "classic"))
def _gt_be_mix(num_gt: int = 1, num_be: int = 1, gt_slots: int = 2,
               num_slots: int = 8, queue_words: int = 8,
               gt_pattern_period: int = 12, be_pattern_period: int = 6,
               burst_words: int = 4,
               port_clock_mhz: float = DEFAULT_PORT_CLOCK_MHZ,
               posted_writes: bool = True,
               slot_policy: str = "spread") -> System:
    if num_gt < 0 or num_be < 0 or num_gt + num_be == 0:
        raise ValueError("need at least one traffic pair")
    builder = (SystemBuilder("mix_tb").mesh(1, 2, num_slots=num_slots)
               .slot_policy(slot_policy))
    for index in range(num_gt + num_be):
        gt = index < num_gt
        master_ni, slave_ni = f"m{index}", f"s{index}"
        period = gt_pattern_period if gt else be_pattern_period
        builder.add_master(master_ni, router=(0, 0),
                           ip_name=f"{master_ni}_ip",
                           pattern=ConstantBitRateTraffic(
                               period_cycles=period, burst_words=burst_words,
                               write=True, posted=posted_writes),
                           queue_words=queue_words,
                           clock_mhz=port_clock_mhz, num_slots=num_slots)
        builder.add_memory(slave_ni, router=(0, 1), ip_name=f"{slave_ni}_mem",
                           queue_words=queue_words,
                           clock_mhz=port_clock_mhz, num_slots=num_slots)
        # A guaranteed connection reserves slots for both directions so its
        # credits also return on reserved slots (otherwise best-effort
        # congestion on the reverse link would throttle the GT channel).
        builder.connect(master_ni, slave_ni, name=f"conn_{master_ni}",
                        gt=gt, slots=gt_slots)
    return builder.build()


@scenario("narrowcast",
          description="One master whose shared address space is split over "
                      "several memories (experiment E11, Figure 3).",
          tags=("functional", "classic"))
def _narrowcast(num_slaves: int = 2, range_words: int = 1024,
                rows: int = 1, cols: int = 2, num_slots: int = 8,
                queue_words: int = 8,
                port_clock_mhz: float = DEFAULT_PORT_CLOCK_MHZ,
                slave_latency: int = 1) -> System:
    if num_slaves < 1:
        raise ValueError("narrowcast needs at least one slave")
    mesh_nodes = [(r, c) for r in range(rows) for c in range(cols)]
    builder = (SystemBuilder("narrowcast_tb")
               .mesh(rows, cols, num_slots=num_slots)
               .add_master("master", router=(0, 0), ni="ni_m",
                           shell_name="m_shell", conn_name="narrowcast",
                           queue_words=queue_words,
                           clock_mhz=port_clock_mhz, num_slots=num_slots))
    slave_names = []
    for index in range(num_slaves):
        name = f"ni_s{index}"
        slave_names.append(name)
        builder.add_memory(name,
                           router=mesh_nodes[(index + 1) % len(mesh_nodes)],
                           ip_name=f"{name}_mem",
                           words=range_words * 4, latency=slave_latency,
                           queue_words=queue_words,
                           clock_mhz=port_clock_mhz, num_slots=num_slots)
    ranges = [(index * range_words * 4, range_words * 4)
              for index in range(num_slaves)]
    builder.connect("master", slave_names, name="narrowcast",
                    narrowcast_ranges=ranges)
    return builder.build()


@scenario("config_system",
          description="A centralized configuration module plus data NIs "
                      "with CNIPs, bootstrapped as in Figure 9 (E6/E7).",
          tags=("functional", "classic", "config"))
def _config_system(num_data_nis: int = 2, num_slots: int = 8,
                   queue_words: int = 8, data_channels_per_ni: int = 2,
                   port_clock_mhz: float = DEFAULT_PORT_CLOCK_MHZ,
                   rows: int = 1, cols: int = 2) -> System:
    mesh_nodes = [(r, c) for r in range(rows) for c in range(cols)]
    builder = (SystemBuilder("config_tb")
               .mesh(rows, cols, num_slots=num_slots)
               .configuration("centralized")
               .add_config_module("cfg", router=(0, 0), port="cfg",
                                  queue_words=queue_words,
                                  clock_mhz=port_clock_mhz,
                                  num_slots=num_slots))
    for index in range(num_data_nis):
        builder.add_node(f"ni{index + 1}",
                         router=mesh_nodes[(index + 1) % len(mesh_nodes)],
                         cnip=True, channels=data_channels_per_ni,
                         port="data", queue_words=queue_words,
                         clock_mhz=port_clock_mhz, num_slots=num_slots)
    return builder.build()


# ---------------------------------------------------------------------------
# New workloads
# ---------------------------------------------------------------------------
@scenario("ring",
          description="Master/memory pairs around a ring topology; each "
                      "request crosses several ring hops.",
          tags=("functional",))
def _ring(num_pairs: int = 3, hops: int = 3, gt: bool = False,
          slots: int = 2, num_slots: int = 8, period_cycles: int = 8,
          burst_words: int = 4,
          max_transactions: Optional[int] = 25) -> System:
    if num_pairs < 1:
        raise ValueError("ring needs at least one pair")
    num_routers = max(2 * num_pairs, 3)
    builder = SystemBuilder("ring").ring(num_routers, num_slots=num_slots)
    for index in range(num_pairs):
        source = (2 * index) % num_routers
        target = (source + hops) % num_routers
        builder.add_master(f"m{index}", router=source,
                           pattern=ConstantBitRateTraffic(
                               period_cycles=period_cycles,
                               burst_words=burst_words, write=True,
                               posted=True,
                               base_address=index << 16),
                           max_transactions=max_transactions)
        builder.add_memory(f"mem{index}", router=target)
        builder.connect(f"m{index}", f"mem{index}", gt=gt, slots=slots)
    return builder.build()


@scenario("hotspot",
          description="Several masters hammering one shared memory behind a "
                      "multi-connection shell (Figure 4).",
          tags=("functional",))
def _hotspot(num_masters: int = 4, rows: int = 2, cols: int = 2,
             period_cycles: int = 6, burst_words: int = 4,
             max_transactions: Optional[int] = 20,
             scheduling: str = "queue_fill",
             memory_latency: int = 1) -> System:
    if num_masters < 2:
        raise ValueError("a hotspot needs at least two masters")
    nodes = [(r, c) for r in range(rows) for c in range(cols)]
    builder = (SystemBuilder("hotspot")
               .mesh(rows, cols)
               .add_memory("hot", router=nodes[-1], scheduling=scheduling,
                           latency=memory_latency))
    for index in range(num_masters):
        builder.add_master(f"m{index}", router=nodes[index % len(nodes)],
                           pattern=ConstantBitRateTraffic(
                               period_cycles=period_cycles,
                               burst_words=burst_words, write=True,
                               base_address=index << 16),
                           max_transactions=max_transactions)
        builder.connect(f"m{index}", "hot")
    return builder.build()


@scenario("random_system",
          description="A seeded random mesh, pair count, traffic mix and "
                      "GT/BE split — deterministic per seed.",
          tags=("functional", "fuzz"))
def _random_system(seed: int = 1, max_pairs: int = 4,
                   transactions_per_master: Optional[int] = None) -> System:
    rng = random.Random(seed)
    rows = rng.randint(1, 3)
    cols = rng.randint(2, 3)
    nodes = [(r, c) for r in range(rows) for c in range(cols)]
    num_pairs = rng.randint(1, max(1, max_pairs))
    builder = SystemBuilder(f"random_{seed}").mesh(rows, cols)
    for index in range(num_pairs):
        gt = rng.random() < 0.5
        kind = rng.randrange(3)
        if kind == 0:
            pattern: TrafficPattern = ConstantBitRateTraffic(
                period_cycles=rng.choice([4, 6, 8, 12, 16]),
                burst_words=rng.choice([1, 2, 4, 8]),
                write=rng.random() < 0.8, posted=rng.random() < 0.5,
                base_address=index << 16)
        elif kind == 1:
            pattern = BurstyTraffic(on_cycles=rng.randint(2, 6),
                                    off_cycles=rng.randint(4, 16),
                                    burst_words=rng.choice([1, 2, 4]),
                                    write=True, posted=rng.random() < 0.5,
                                    base_address=index << 16)
        else:
            pattern = RandomTraffic(
                injection_probability=rng.uniform(0.05, 0.3),
                burst_words=rng.choice([1, 2, 4]),
                read_fraction=rng.uniform(0.0, 0.5),
                base_address=index << 16,
                seed=rng.randrange(1 << 16))
        builder.add_master(
            f"m{index}", router=rng.choice(nodes), pattern=pattern,
            max_transactions=(transactions_per_master
                              if transactions_per_master is not None
                              else rng.randint(5, 25)))
        builder.add_memory(f"mem{index}", router=rng.choice(nodes),
                           latency=rng.randint(0, 2))
        builder.connect(f"m{index}", f"mem{index}", gt=gt,
                        slots=rng.randint(1, 2) if gt else None)
    return builder.build()


@scenario("torus_neighbor",
          description="One master per torus router streaming to its +x "
                      "neighbour's memory; wraparound links carry the edge "
                      "columns, dimension-ordered routing keeps BE "
                      "deadlock-free (checked at build).",
          tags=("functional", "topology"))
def _torus_neighbor(rows: int = 3, cols: int = 3, period_cycles: int = 8,
                    burst_words: int = 4, gt_rows: int = 1,
                    max_transactions: Optional[int] = 10) -> System:
    if rows < 1 or cols < 3:
        raise ValueError("the neighbour torus needs at least 1x3 routers")
    builder = (SystemBuilder("torus_neighbor")
               .torus(rows, cols)
               .options(deadlock_check="error"))
    for r in range(rows):
        gt = r < gt_rows
        for c in range(cols):
            master, memory = f"m{r}_{c}", f"mem{r}_{c}"
            builder.add_master(master, router=(r, c),
                               pattern=ConstantBitRateTraffic(
                                   period_cycles=period_cycles,
                                   burst_words=burst_words, write=True,
                                   posted=True,
                                   base_address=(r * cols + c) << 16),
                               max_transactions=max_transactions)
            builder.add_memory(memory, router=(r, (c + 1) % cols))
            builder.connect(master, memory, gt=gt,
                            slots=2 if gt else None)
    return builder.build()


@scenario("tree_hotspot",
          description="Leaf masters of an arity-ary tree hammering one "
                      "memory at the root: tree routes are unique and "
                      "acyclic, so the deadlock gate can run in error mode.",
          tags=("functional", "topology"))
def _tree_hotspot(arity: int = 2, depth: int = 2, period_cycles: int = 6,
                  burst_words: int = 4,
                  max_transactions: Optional[int] = 10,
                  scheduling: str = "queue_fill") -> System:
    if arity < 1 or depth < 1:
        raise ValueError("the tree hotspot needs at least one leaf level")
    num_nodes = sum(arity ** level for level in range(depth + 1))
    first_leaf = num_nodes - arity ** depth
    builder = (SystemBuilder("tree_hotspot")
               .tree(arity, depth)
               .options(deadlock_check="error")
               .add_memory("root_mem", router=0, scheduling=scheduling))
    for index, leaf in enumerate(range(first_leaf, num_nodes)):
        builder.add_master(f"leaf{index}", router=leaf,
                           pattern=ConstantBitRateTraffic(
                               period_cycles=period_cycles,
                               burst_words=burst_words, write=True,
                               base_address=index << 16),
                           max_transactions=max_transactions)
        builder.connect(f"leaf{index}", "root_mem")
    return builder.build()


def _paper_floorplan() -> Topology:
    """The ~10-router irregular SoC graph used by ``irregular_soc``.

    Mirrors the paper's target: a small heterogeneous SoC (host CPU, DSP
    cluster, video path, peripherals) whose floorplan dictates an irregular
    link structure rather than a regular grid.
    """
    nodes = [
        ("cpu", {"block": "host"}),
        ("bridge", {"block": "interconnect"}),
        ("dsp_a", {"block": "dsp"}),
        ("dsp_b", {"block": "dsp"}),
        ("accel", {"block": "accelerator"}),
        ("video", {"block": "video"}),
        ("audio", {"block": "audio"}),
        ("io", {"block": "peripherals"}),
        ("mem_ctrl", {"block": "memory"}),
        ("sram_ctrl", {"block": "memory"}),
    ]
    edges = [
        ("cpu", "bridge"), ("cpu", "dsp_a"),
        ("bridge", "mem_ctrl"), ("bridge", "sram_ctrl"), ("bridge", "io"),
        ("dsp_a", "dsp_b"), ("dsp_a", "mem_ctrl"),
        ("dsp_b", "accel"),
        ("accel", "video"),
        ("video", "io"),
        ("audio", "io"),
        ("sram_ctrl", "dsp_b"),
    ]
    return Topology.custom(nodes, edges, name="paper_soc")


@scenario("irregular_soc",
          description="A ~10-router irregular SoC floorplan (host CPU, DSP "
                      "cluster, video path, two memories) built through "
                      "custom_topology - the paper's arbitrary-topology "
                      "claim end to end.",
          tags=("functional", "topology"))
def _irregular_soc(period_cycles: int = 8, burst_words: int = 4,
                   max_transactions: Optional[int] = 8,
                   gt_slots: int = 2) -> System:
    builder = (SystemBuilder("irregular_soc")
               .custom_topology(_paper_floorplan())
               .options(deadlock_check="error")
               .add_memory("sdram", router="mem_ctrl", words=8192,
                           scheduling="queue_fill")
               .add_memory("sram", router="sram_ctrl", words=4096,
                           scheduling="queue_fill")
               .add_memory("frame", router="io", words=4096))
    traffic = [
        ("host", "cpu", "sdram", True),       # control traffic, guaranteed
        ("dsp0", "dsp_a", "sdram", False),
        ("dsp1", "dsp_b", "sram", False),
        ("cam", "video", "frame", True),      # streaming video, guaranteed
        ("mix", "audio", "sram", False),
    ]
    for index, (name, router, target, gt) in enumerate(traffic):
        builder.add_master(name, router=router,
                           pattern=ConstantBitRateTraffic(
                               period_cycles=period_cycles,
                               burst_words=burst_words, write=True,
                               base_address=index << 16),
                           max_transactions=max_transactions)
        builder.connect(name, target, gt=gt, slots=gt_slots if gt else None)
    return builder.build()


@scenario("multicast",
          description="One master whose transactions are duplicated onto "
                      "several memories, all executing every write "
                      "(Section 2 multicast connection).",
          tags=("functional",))
def _multicast(num_slaves: int = 2, rows: int = 1, cols: int = 2,
               period_cycles: int = 8, burst_words: int = 4,
               max_transactions: Optional[int] = 12,
               memory_words: int = 4096) -> System:
    if num_slaves < 2:
        raise ValueError("a multicast needs at least two slaves")
    mesh_nodes = [(r, c) for r in range(rows) for c in range(cols)]
    builder = (SystemBuilder("multicast")
               .mesh(rows, cols)
               .add_master("master", router=(0, 0),
                           pattern=ConstantBitRateTraffic(
                               period_cycles=period_cycles,
                               burst_words=burst_words, write=True,
                               posted=True),
                           max_transactions=max_transactions))
    slave_names = []
    for index in range(num_slaves):
        name = f"copy{index}"
        slave_names.append(name)
        builder.add_memory(name,
                           router=mesh_nodes[(index + 1) % len(mesh_nodes)],
                           words=memory_words)
    builder.connect("master", slave_names, name="multicast", multicast=True)
    return builder.build()


# ---------------------------------------------------------------------------
# DRAM-backed workloads (repro.mem: banked device model behind the shell)
# ---------------------------------------------------------------------------
@scenario("dram_hotspot",
          description="Several masters hammering one DRAM-backed shared "
                      "memory: every master lands in a different row of the "
                      "same bank, so service latency is state-dependent.",
          tags=("functional", "dram"))
def _dram_hotspot(num_masters: int = 4, rows: int = 2, cols: int = 2,
                  period_cycles: int = 6, burst_words: int = 4,
                  max_transactions: Optional[int] = 20,
                  scheduler: str = "frfcfs",
                  timing: str = "default") -> System:
    if num_masters < 2:
        raise ValueError("a hotspot needs at least two masters")
    nodes = [(r, c) for r in range(rows) for c in range(cols)]
    builder = (SystemBuilder("dram_hotspot")
               .mesh(rows, cols)
               .add_memory("dram", router=nodes[-1], backend="dram",
                           timing=timing, scheduler=scheduler))
    for index in range(num_masters):
        # index << 16 is a multiple of row_words * num_banks (256 * 8): all
        # masters target bank 0 but distinct rows — the bank hotspot.
        builder.add_master(f"m{index}", router=nodes[index % len(nodes)],
                           pattern=ConstantBitRateTraffic(
                               period_cycles=period_cycles,
                               burst_words=burst_words, write=True,
                               base_address=index << 16),
                           max_transactions=max_transactions)
        builder.connect(f"m{index}", "dram")
    return builder.build()


@scenario("video_pipeline_dram",
          description="Video line producers streaming into a DRAM-backed "
                      "frame buffer over GT connections (the paper's video "
                      "use case on real memory timing).",
          tags=("functional", "dram"))
def _video_pipeline_dram(num_producers: int = 2, pixels_per_line: int = 32,
                         lines: int = 4, gt_slots: int = 2,
                         scheduler: str = "frfcfs",
                         timing: str = "default") -> System:
    if num_producers < 1:
        raise ValueError("the pipeline needs at least one producer")
    builder = (SystemBuilder("video_pipeline_dram")
               .mesh(1, 2)
               .add_memory("frame", router=(0, 1), backend="dram",
                           timing=timing, scheduler=scheduler))
    for index in range(num_producers):
        traffic = VideoLineTraffic(pixels_per_line=pixels_per_line,
                                   burst_words=8, cycles_per_burst=16,
                                   blanking_cycles=32,
                                   base_address=index << 16)
        bursts_per_line = -(-pixels_per_line // 8)
        builder.add_master(f"cam{index}", router=(0, 0), pattern=traffic,
                           max_transactions=lines * bursts_per_line)
        builder.connect(f"cam{index}", "frame", gt=True, slots=gt_slots)
    return builder.build()


@scenario("dram_scheduler_mix",
          description="A bursty read/write mix whose streams interleave "
                      "rows of one DRAM bank — separates in-order FCFS "
                      "from open-page FR-FCFS scheduling.",
          tags=("functional", "dram"))
def _dram_scheduler_mix(scheduler: str = "frfcfs", timing: str = "slow",
                        num_writers: int = 2, period_cycles: int = 4,
                        burst_words: int = 4,
                        max_transactions: Optional[int] = 24,
                        banks: int = 2, row_words: int = 128) -> System:
    """Writers stream into distinct rows of bank 0 while a reader walks a
    third row of the same bank; multi-connection arbitration interleaves
    their requests, so FCFS pays a row conflict on almost every access while
    FR-FCFS batches whatever row is open."""
    if num_writers < 1:
        raise ValueError("the mix needs at least one writer")
    builder = (SystemBuilder("dram_scheduler_mix")
               .mesh(1, 2)
               .add_memory("dram", router=(0, 1), backend="dram",
                           timing=timing, scheduler=scheduler,
                           banks=banks, row_words=row_words))
    row_stride = row_words * banks  # next row of the same bank
    for index in range(num_writers):
        builder.add_master(f"w{index}", router=(0, 0),
                           pattern=ConstantBitRateTraffic(
                               period_cycles=period_cycles,
                               burst_words=burst_words, write=True,
                               posted=True,
                               base_address=index * row_stride,
                               address_wrap=row_words // 2),
                           max_transactions=max_transactions)
        builder.connect(f"w{index}", "dram")
    builder.add_master("reader", router=(0, 0),
                       pattern=ConstantBitRateTraffic(
                           period_cycles=2 * period_cycles,
                           burst_words=burst_words, write=False,
                           base_address=num_writers * row_stride,
                           address_wrap=row_words // 2),
                       max_transactions=max_transactions)
    builder.connect("reader", "dram")
    return builder.build()


# ---------------------------------------------------------------------------
# Perf-suite shapes (benchmarks/perf/run_perf.py builds these by name)
# ---------------------------------------------------------------------------
@scenario("idle_mesh",
          description="A rows x cols mesh, one idle NI per router, zero "
                      "traffic — the idle-skip best case.",
          tags=("perf",))
def _idle_mesh(rows: int = 4, cols: int = 4,
               queue_words: int = 8) -> System:
    builder = SystemBuilder("idle_mesh").mesh(rows, cols)
    for r in range(rows):
        for c in range(cols):
            builder.add_node(f"ni{r}_{c}", router=(r, c), port="p",
                             channels=1, queue_words=queue_words)
    return builder.build()


#: ``saturated_mix`` is the E10 mix at saturating rates — one definition,
#: shared with the functional ``gt_be_mix`` scenario.
register("saturated_mix", _gt_be_mix,
         description="The E10 GT+BE mix at saturating injection rates "
                     "(perf-suite shape of gt_be_mix; contiguous slot "
                     "runs so GT traffic packetizes and travels as bursts).",
         tags=("perf",),
         num_gt=2, num_be=2, gt_slots=2,
         gt_pattern_period=8, be_pattern_period=4, burst_words=4,
         slot_policy="contiguous")


@scenario("saturated_dram",
          description="Masters saturating one DRAM-backed memory (bank "
                      "hotspot, FR-FCFS) plus an ideal-memory control pair "
                      "(perf-suite shape of the repro.mem hot path).",
          tags=("perf", "dram"))
def _saturated_dram(num_masters: int = 3, period_cycles: int = 4,
                    burst_words: int = 4, scheduler: str = "frfcfs",
                    timing: str = "default") -> System:
    builder = (SystemBuilder("saturated_dram")
               .mesh(2, 2)
               .add_memory("dram", router=(1, 1), backend="dram",
                           timing=timing, scheduler=scheduler))
    nodes = [(0, 0), (0, 1), (1, 0)]
    for index in range(num_masters):
        builder.add_master(f"m{index}", router=nodes[index % len(nodes)],
                           ip_name=f"m{index}_ip",
                           pattern=ConstantBitRateTraffic(
                               period_cycles=period_cycles,
                               burst_words=burst_words, write=True,
                               posted=True, base_address=index << 16))
        builder.connect(f"m{index}", "dram")
    # A control pair on an ideal memory keeps the classic slave hot path in
    # the same measurement.
    builder.add_master("ctl", router=(0, 0), ip_name="ctl_ip",
                       pattern=ConstantBitRateTraffic(
                           period_cycles=period_cycles,
                           burst_words=burst_words, write=True, posted=True))
    builder.add_memory("ideal", router=(0, 1))
    builder.connect("ctl", "ideal")
    return builder.build()


@scenario("saturated_torus",
          description="A 4x4 torus under saturating mixed GT/BE load whose "
                      "pairs cross rows, columns and wraparound links "
                      "(perf-suite shape of the torus routing hot path).",
          tags=("perf", "topology"))
def _saturated_torus(rows: int = 4, cols: int = 4) -> System:
    builder = (SystemBuilder("saturated_torus").torus(rows, cols)
               .slot_policy("contiguous"))
    for r in range(rows):
        gt = r % 2 == 0
        master, slave = f"m{r}", f"s{r}"
        # Source and sink move diagonally so the dimension-ordered routes
        # mix line hops with single-hop wraparounds in both dimensions.
        src = (r, r % cols)
        dst = ((r + 1) % rows, (r + cols - 1) % cols)
        pattern = ConstantBitRateTraffic(period_cycles=8 if gt else 4,
                                         burst_words=4, write=True,
                                         posted=True, base_address=r << 16)
        builder.add_master(master, router=src, ip_name=f"{master}_ip",
                           pattern=pattern)
        builder.add_memory(slave, router=dst, ip_name=f"{slave}_mem")
        builder.connect(master, slave, name=f"c_{master}", gt=gt, slots=2)
    return builder.build()


# ---------------------------------------------------------------------------
# Fault-injection scenarios (repro.faults)
# ---------------------------------------------------------------------------
@scenario("link_failure_reroute",
          description="A mesh link dies mid-run: best-effort traffic is "
                      "rerouted over the surviving graph and the retry "
                      "layer recovers every in-flight loss.",
          tags=("functional", "faults"))
def _link_failure_reroute(fail_cycle: int = 60,
                          max_transactions: int = 60,
                          period_cycles: int = 10, burst_words: int = 4,
                          timeout_cycles: int = 400, max_retries: int = 5
                          ) -> System:
    return (SystemBuilder("link_failure_reroute")
            .mesh(2, 2)
            .add_master("m0", router=(0, 0),
                        pattern=ConstantBitRateTraffic(
                            period_cycles=period_cycles,
                            burst_words=burst_words, write=True,
                            posted=False),
                        max_transactions=max_transactions,
                        timeout_cycles=timeout_cycles,
                        max_retries=max_retries)
            .add_memory("mem", router=(1, 1), words=4096)
            .connect("m0", "mem", name="m0_mem")
            .inject_fault(fail_cycle, (0, 0), (0, 1))
            .build())


@scenario("transient_storm",
          description="A seeded drop window corrupts packets on the only "
                      "link of a two-router system; end-to-end retry with "
                      "exponential backoff rides the storm out.",
          tags=("functional", "faults"))
def _transient_storm(window_start: int = 40, window_end: int = 400,
                     drop_probability: float = 0.4, seed: int = 7,
                     max_transactions: int = 40,
                     period_cycles: int = 12, burst_words: int = 4,
                     timeout_cycles: int = 150, max_retries: int = 6
                     ) -> System:
    return (SystemBuilder("transient_storm")
            .mesh(1, 2)
            .add_master("m0", router=(0, 0),
                        pattern=ConstantBitRateTraffic(
                            period_cycles=period_cycles,
                            burst_words=burst_words, write=True,
                            posted=False),
                        max_transactions=max_transactions,
                        timeout_cycles=timeout_cycles,
                        max_retries=max_retries)
            .add_memory("mem", router=(0, 1), words=4096)
            .connect("m0", "mem", name="m0_mem")
            .inject_fault(window_start, (0, 0), (0, 1), kind="transient",
                          until_cycle=window_end,
                          drop_probability=drop_probability, seed=seed)
            .build())


def _diamond_topology() -> Topology:
    """A diamond with a long southern detour: n0-n1-n2 (short) and
    n0-n3-n4-n2 (the only alternative once n0-n1 dies)."""
    return Topology.custom(
        ["n0", "n1", "n2", "n3", "n4"],
        [("n0", "n1"), ("n1", "n2"),
         ("n0", "n3"), ("n3", "n4"), ("n4", "n2")],
        name="diamond")


@scenario("gt_degraded",
          description="A GT connection loses its path; the detour has no "
                      "free slots (a second GT connection owns them), so "
                      "the channel is demoted to best-effort — degraded "
                      "and reported, never silently wrong.",
          tags=("functional", "faults"))
def _gt_degraded(fail_cycle: int = 80, max_transactions: int = 40,
                 period_cycles: int = 12, burst_words: int = 2,
                 num_slots: int = 4,
                 timeout_cycles: int = 400, max_retries: int = 5) -> System:
    return (SystemBuilder("gt_degraded")
            .custom_topology(_diamond_topology(), num_slots=num_slots)
            .add_master("m0", router="n0",
                        pattern=ConstantBitRateTraffic(
                            period_cycles=period_cycles,
                            burst_words=burst_words, write=True,
                            posted=False),
                        max_transactions=max_transactions,
                        timeout_cycles=timeout_cycles,
                        max_retries=max_retries)
            .add_memory("mem", router="n2", words=4096)
            # The victim: GT over the short n0-n1-n2 path.
            .connect("m0", "mem", name="victim", gt=True,
                     request_slots=2, response_slots=2)
            # The blocker: a GT connection whose slots saturate the only
            # detour (n3-n4-n2 and back), so the victim cannot be re-placed.
            .add_master("blocker", router="n3",
                        pattern=ConstantBitRateTraffic(
                            period_cycles=2 * period_cycles,
                            burst_words=burst_words, write=True,
                            posted=False),
                        max_transactions=max_transactions // 2,
                        timeout_cycles=timeout_cycles,
                        max_retries=max_retries)
            .add_memory("mem2", router="n2", words=4096)
            .connect("blocker", "mem2", name="blocker", gt=True,
                     request_slots=3, response_slots=3)
            .inject_fault(fail_cycle, "n0", "n1")
            .build())


@scenario("saturated_grid",
          description="A 6x6 mesh under saturating mixed GT/BE load with "
                      "all three BE arbiters (perf-suite hot-path shape).",
          tags=("perf",))
def _saturated_grid(rows: int = 6, cols: int = 6) -> System:
    arbiters = ("round_robin", "weighted_round_robin", "queue_fill")
    builder = (SystemBuilder("saturated_grid").mesh(rows, cols)
               .slot_policy("contiguous"))
    index = 0
    for row in range(rows):
        gt = row % 2 == 0
        for k in range(2):
            master_ni, slave_ni = f"m{row}_{k}", f"s{row}_{k}"
            pattern = ConstantBitRateTraffic(period_cycles=8 if gt else 4,
                                             burst_words=4, write=True,
                                             posted=True)
            builder.add_master(master_ni, router=(row, k),
                               ip_name=f"{master_ni}_ip", pattern=pattern,
                               be_arbiter=arbiters[index % len(arbiters)])
            index += 1
            builder.add_memory(slave_ni, router=(row, cols - 2 + k),
                               ip_name=f"{slave_ni}_mem",
                               be_arbiter=arbiters[index % len(arbiters)])
            index += 1
            builder.connect(master_ni, slave_ni, name=f"c_{master_ni}",
                            gt=gt, slots=2)
    return builder.build()


@scenario("obs_tour",
          description="A 2x2 mesh with GT and BE traffic, a DRAM-backed "
                      "memory and a transient drop window, built with the "
                      "full probe network attached — the observability "
                      "showcase behind examples/obs_tour.py.",
          tags=("functional", "obs", "faults"))
def _obs_tour(max_transactions: int = 40, period_cycles: int = 12,
              burst_words: int = 4, sample_period: int = 16,
              capture_depth: int = 64, series_cap: int = 512,
              window_start: int = 40, window_end: int = 400,
              drop_probability: float = 0.3, seed: int = 7,
              timeout_cycles: int = 200, max_retries: int = 6,
              traced: bool = False) -> System:
    # The GT stream (dsp -> DRAM) crosses the top row; the BE stream
    # (cpu -> SRAM) crosses the bottom row straight through the transient
    # drop window, so retries, link meters, DRAM bank state and fault
    # captures all have something to show.  traced=True additionally
    # records trace events for packet-lifetime (Perfetto) export.
    builder = (SystemBuilder("obs_tour")
               .mesh(2, 2)
               .add_master("dsp", router=(0, 0),
                           pattern=ConstantBitRateTraffic(
                               period_cycles=period_cycles,
                               burst_words=burst_words, write=True,
                               posted=False),
                           max_transactions=max_transactions,
                           timeout_cycles=timeout_cycles,
                           max_retries=max_retries)
               .add_master("cpu", router=(1, 0),
                           pattern=ConstantBitRateTraffic(
                               period_cycles=2 * period_cycles,
                               burst_words=max(burst_words // 2, 1),
                               write=True, posted=False),
                           max_transactions=max_transactions // 2,
                           timeout_cycles=timeout_cycles,
                           max_retries=max_retries)
               .add_memory("dram0", router=(0, 1), backend="dram")
               .add_memory("sram0", router=(1, 1), words=4096)
               .connect("dsp", "dram0", name="dsp_dram", gt=True, slots=2)
               .connect("cpu", "sram0", name="cpu_sram")
               .inject_fault(window_start, (1, 0), (1, 1), kind="transient",
                             until_cycle=window_end,
                             drop_probability=drop_probability, seed=seed)
               .observe(period=sample_period, capture_depth=capture_depth,
                        series_cap=series_cap))
    if traced:
        builder.trace(Tracer(max_events=200000))
    return builder.build()
