"""Declarative front-door API: SystemBuilder, System and scenarios.

``repro.api`` is the recommended way to assemble simulated systems::

    from repro.api import SystemBuilder

    system = (SystemBuilder("quickstart")
              .mesh(1, 2)
              .add_master("cpu", router=(0, 0))
              .add_memory("mem", router=(0, 1))
              .connect("cpu", "mem")
              .build())
    system.run_until_idle()

Ready-made systems live in the scenario registry::

    from repro.api import scenarios

    system = scenarios.build("ring", num_pairs=4)

See ``BUILDING.md`` at the repository root for the full walk-through.
"""

from repro.api import scenarios
from repro.api.builder import (
    BuilderError,
    ConnectionInfo,
    MasterHandle,
    MemoryHandle,
    System,
    SystemBuilder,
)

__all__ = [
    "BuilderError",
    "ConnectionInfo",
    "MasterHandle",
    "MemoryHandle",
    "System",
    "SystemBuilder",
    "scenarios",
]
