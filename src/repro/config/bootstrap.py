"""Bootstrapping the configuration connections themselves (Figure 9).

Before the centralized configuration module can open data connections over
the NoC, its own configuration connections to the CNIPs of the remote NIs
must exist.  :func:`bootstrap_configuration_connection` performs steps 1 and
2 of Figure 9 for one remote NI: step 1 programs the request channel by
writing the *local* NI's registers directly through the configuration shell;
step 2 then uses that channel to program the response channel by sending
write messages over the NoC, the last one requesting an acknowledgement.

Historically this lived in ``repro.testbench``; it moved here so the
declarative :class:`~repro.api.builder.SystemBuilder` and the testbench
wrappers share one implementation (``repro.testbench`` re-exports it).
"""

from __future__ import annotations

from repro.core.kernel import NIKernel
from repro.core.registers import (
    REG_CTRL,
    REG_PATH,
    REG_REMOTE_QID,
    REG_SPACE,
    channel_register_address,
    encode_ctrl,
    encode_path,
)
from repro.core.shells.config_shell import ConfigShell


def bootstrap_configuration_connection(config_shell: ConfigShell,
                                       noc, local_kernel: NIKernel,
                                       local_channel: int,
                                       remote_name: str,
                                       remote_kernel: NIKernel,
                                       remote_channel: int) -> int:
    """Open the configuration connection itself (Figure 9, steps 1 and 2).

    Returns the number of configuration operations issued.
    """
    local_name = local_kernel.name
    remote_dest_words = remote_kernel.channel(remote_channel).dest_queue.capacity
    local_dest_words = local_kernel.channel(local_channel).dest_queue.capacity

    operations = 0
    # Step 1: request channel, written locally ("wr path, rqid / wr space /
    # wr be, enable" in Figure 9).
    step1 = [
        (channel_register_address(local_channel, REG_PATH),
         encode_path(noc.route(local_name, remote_name))),
        (channel_register_address(local_channel, REG_REMOTE_QID),
         remote_channel),
        (channel_register_address(local_channel, REG_SPACE),
         remote_dest_words),
        (channel_register_address(local_channel, REG_CTRL),
         encode_ctrl(True, False)),
    ]
    for address, value in step1:
        config_shell.write(local_name, address, value)
        operations += 1

    # Step 2: response channel, written at the remote NI via the NoC.
    step2 = [
        (channel_register_address(remote_channel, REG_PATH),
         encode_path(noc.route(remote_name, local_name))),
        (channel_register_address(remote_channel, REG_REMOTE_QID),
         local_channel),
        (channel_register_address(remote_channel, REG_SPACE),
         local_dest_words),
        (channel_register_address(remote_channel, REG_CTRL),
         encode_ctrl(True, False)),
    ]
    for position, (address, value) in enumerate(step2):
        acknowledged = position == len(step2) - 1
        config_shell.write(remote_name, address, value,
                           acknowledged=acknowledged)
        operations += 1
    return operations
