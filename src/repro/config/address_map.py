"""Global configuration address map.

Every NI exposes its register file through its configuration port (CNIP).
The configuration module sees a single memory map in which each NI occupies a
64 Ki-word window; the configuration shell decodes the window to decide
whether an access is local (executed directly) or must travel over the NoC.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Size of the register window of one NI, in words.
NI_WINDOW_WORDS = 1 << 16


class AddressMapError(ValueError):
    """Raised for unknown NIs or addresses outside every window."""


class ConfigAddressMap:
    """Assigns each NI a window in the global configuration address space."""

    def __init__(self, ni_names: List[str]) -> None:
        if not ni_names:
            raise AddressMapError("address map needs at least one NI")
        if len(set(ni_names)) != len(ni_names):
            raise AddressMapError("duplicate NI names in address map")
        self._names = list(ni_names)
        self._bases: Dict[str, int] = {
            name: index * NI_WINDOW_WORDS for index, name in enumerate(ni_names)}

    @property
    def ni_names(self) -> List[str]:
        return list(self._names)

    def base(self, ni_name: str) -> int:
        try:
            return self._bases[ni_name]
        except KeyError as exc:
            raise AddressMapError(f"unknown NI {ni_name!r}") from exc

    def global_address(self, ni_name: str, local_address: int) -> int:
        if not 0 <= local_address < NI_WINDOW_WORDS:
            raise AddressMapError(
                f"local address 0x{local_address:x} outside the NI window")
        return self.base(ni_name) + local_address

    def decode(self, global_address: int) -> Tuple[str, int]:
        """Split a global address into (NI name, local register address)."""
        index, local = divmod(global_address, NI_WINDOW_WORDS)
        if not 0 <= index < len(self._names):
            raise AddressMapError(
                f"address 0x{global_address:x} outside every NI window")
        return self._names[index], local

    def __len__(self) -> int:
        return len(self._names)
