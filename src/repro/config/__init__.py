"""Run-time NoC configuration: connections, slot allocation, configuration
managers.

"Before the Aethereal NoC can be used by an application, it must be
configured.  NoC (re)configuration means opening and closing connections in
the system." (Section 3)

This package provides:

* :mod:`repro.config.connection` — connection specifications and the register
  programs (lists of register writes) that open and close them;
* :mod:`repro.config.slot_allocation` — TDM slot allocation with per-link
  conflict checking (the shared-resource part of opening a connection);
* :mod:`repro.config.manager` — the centralized configuration manager that
  programs the NIs over the NoC itself, a functional configurator for tests,
  and the distributed-configuration model of Section 3;
* :mod:`repro.config.address_map` — the global memory map of all NI
  configuration ports.
"""

from repro.config.address_map import ConfigAddressMap
from repro.config.connection import (
    ChannelEndpointRef,
    ChannelPairSpec,
    ConnectionSpec,
    RegisterWrite,
    build_close_program,
    build_open_program,
)
from repro.config.manager import (
    CentralizedConfigurationManager,
    ConfigurationError,
    DistributedConfigurationModel,
    FunctionalConfigurator,
)
from repro.config.slot_allocation import (
    CentralizedSlotAllocator,
    SlotAllocationError,
    SlotRequest,
    evenly_spaced_slots,
)

__all__ = [
    "CentralizedConfigurationManager",
    "CentralizedSlotAllocator",
    "ChannelEndpointRef",
    "ChannelPairSpec",
    "ConfigAddressMap",
    "ConfigurationError",
    "ConnectionSpec",
    "DistributedConfigurationModel",
    "FunctionalConfigurator",
    "RegisterWrite",
    "SlotAllocationError",
    "SlotRequest",
    "build_close_program",
    "build_open_program",
    "evenly_spaced_slots",
]
