"""Configuration managers.

Three ways of configuring the NoC are provided, matching Section 3 of the
paper:

* :class:`FunctionalConfigurator` — applies a register program directly to
  the NI kernels.  This is not a hardware mechanism; it exists so that tests
  and experiments that are not about configuration can set up connections
  instantly and deterministically.
* :class:`CentralizedConfigurationManager` — the model the prototype uses:
  a single configuration module opens and closes connections by sending
  DTL-MMIO transactions over the NoC (through a configuration shell) to the
  CNIPs of the remote NIs.  Slot information lives in the central allocator,
  so routers need no slot tables.
* :class:`DistributedConfigurationModel` — the alternative the paper
  discusses: several configuration ports operate concurrently, slot
  information is kept in the routers, and conflicting tentative reservations
  are rejected and retried.  This is a timed abstract model (it does not send
  messages through the cycle simulator) used by experiment E6 to reproduce
  the centralized-versus-distributed trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config.connection import (
    ConnectionSpec,
    RegisterWrite,
    build_close_program,
    build_open_program,
    count_register_writes,
)
from repro.config.slot_allocation import (
    CentralizedSlotAllocator,
    SlotAllocationError,
    SlotRequest,
    build_requests_for_connection,
)
from repro.core.kernel import NIKernel
from repro.core.shells.config_shell import ConfigOperation, ConfigShell
from repro.network.noc import NoC
from repro.sim.stats import StatsRegistry


class ConfigurationError(RuntimeError):
    """Raised when a connection cannot be opened."""


# --------------------------------------------------------------------------
# Functional (instant) configuration
# --------------------------------------------------------------------------
class FunctionalConfigurator:
    """Applies register programs directly (no NoC traffic, zero time)."""

    def __init__(self, kernels: Dict[str, NIKernel],
                 allocator: Optional[CentralizedSlotAllocator] = None) -> None:
        self.kernels = dict(kernels)
        self.allocator = allocator
        self.stats = StatsRegistry()

    def apply(self, program: List[RegisterWrite]) -> None:
        for write in program:
            kernel = self._kernel(write.ni)
            kernel.write_register(write.address, write.value)
            self.stats.counter("register_writes").increment()

    def open_connection(self, noc: NoC, spec: ConnectionSpec
                        ) -> List[RegisterWrite]:
        """Allocate slots (if needed), build the program and apply it."""
        assignment = {}
        if self.allocator is not None:
            for request in build_requests_for_connection(
                    noc, spec, self.allocator.num_slots):
                try:
                    slots = self.allocator.allocate(request)
                except SlotAllocationError as exc:
                    raise ConfigurationError(str(exc)) from exc
                assignment[request.owner] = slots
        program = build_open_program(noc, self.kernels, spec, assignment)
        self.apply(program)
        return program

    def close_connection(self, spec: ConnectionSpec) -> List[RegisterWrite]:
        assignment = {}
        if self.allocator is not None:
            for pair in spec.pairs:
                for endpoint in (pair.master, pair.slave):
                    allocation = self.allocator.allocation_of(endpoint.ni,
                                                              endpoint.channel)
                    if allocation is not None:
                        assignment[(endpoint.ni, endpoint.channel)] = \
                            list(allocation.injection_slots)
                        self.allocator.release(endpoint.ni, endpoint.channel)
        program = build_close_program(self.kernels, spec, assignment)
        self.apply(program)
        return program

    def _kernel(self, name: str) -> NIKernel:
        try:
            return self.kernels[name]
        except KeyError as exc:
            raise ConfigurationError(f"unknown NI {name!r}") from exc


# --------------------------------------------------------------------------
# Centralized configuration over the NoC
# --------------------------------------------------------------------------
@dataclass
class ConnectionHandle:
    """Tracks an open/close request issued through the configuration module."""

    spec: ConnectionSpec
    program: List[RegisterWrite]
    operations: List[ConfigOperation] = field(default_factory=list)
    slot_assignment: Dict[Tuple[str, int], List[int]] = field(default_factory=dict)

    @property
    def done(self) -> bool:
        return all(op.done for op in self.operations)

    @property
    def register_writes(self) -> int:
        return len(self.program)

    @property
    def register_writes_per_ni(self) -> Dict[str, int]:
        return count_register_writes(self.program)

    @property
    def completion_cycle(self) -> Optional[int]:
        cycles = [op.complete_cycle for op in self.operations]
        if any(c is None for c in cycles) or not cycles:
            return None
        return max(cycles)


class CentralizedConfigurationManager:
    """The centralized configuration module of the prototype (Figure 8/9)."""

    def __init__(self, noc: NoC, kernels: Dict[str, NIKernel],
                 config_shell: ConfigShell,
                 allocator: Optional[CentralizedSlotAllocator] = None) -> None:
        self.noc = noc
        self.kernels = dict(kernels)
        self.config_shell = config_shell
        if allocator is None:
            num_slots = (next(iter(kernels.values())).num_slots
                         if kernels else 8)
            allocator = CentralizedSlotAllocator(num_slots)
        self.allocator = allocator
        self.stats = StatsRegistry()
        self.handles: List[ConnectionHandle] = []

    def open_connection(self, spec: ConnectionSpec) -> ConnectionHandle:
        assignment: Dict[Tuple[str, int], List[int]] = {}
        for request in build_requests_for_connection(self.noc, spec,
                                                     self.allocator.num_slots):
            try:
                assignment[request.owner] = self.allocator.allocate(request)
            except SlotAllocationError as exc:
                raise ConfigurationError(str(exc)) from exc
        program = build_open_program(self.noc, self.kernels, spec, assignment)
        handle = self._issue(spec, program)
        handle.slot_assignment = assignment
        return handle

    def close_connection(self, spec: ConnectionSpec) -> ConnectionHandle:
        assignment: Dict[Tuple[str, int], List[int]] = {}
        for pair in spec.pairs:
            for endpoint in (pair.master, pair.slave):
                allocation = self.allocator.allocation_of(endpoint.ni,
                                                          endpoint.channel)
                if allocation is not None:
                    assignment[(endpoint.ni, endpoint.channel)] = \
                        list(allocation.injection_slots)
                    self.allocator.release(endpoint.ni, endpoint.channel)
        program = build_close_program(self.kernels, spec, assignment)
        return self._issue(spec, program)

    def _issue(self, spec: ConnectionSpec,
               program: List[RegisterWrite]) -> ConnectionHandle:
        handle = ConnectionHandle(spec=spec, program=program)
        for write in program:
            op = self.config_shell.write(write.ni, write.address, write.value,
                                         acknowledged=write.acknowledged)
            handle.operations.append(op)
            self.stats.counter("register_writes").increment()
        self.handles.append(handle)
        return handle

    def is_idle(self) -> bool:
        return self.config_shell.is_idle()


# --------------------------------------------------------------------------
# Distributed configuration model (Section 3 trade-off)
# --------------------------------------------------------------------------
@dataclass
class ConfigJob:
    """One connection to open, as seen by the timing model."""

    name: str
    slot_requests: List[SlotRequest]
    register_writes: int


@dataclass
class ConfigModelResult:
    """Outcome of a configuration-model run (experiment E6 rows)."""

    model: str
    ports: int
    total_cycles: int
    register_writes: int
    conflicts: int
    retries: int
    failed: int

    def as_row(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "ports": self.ports,
            "cycles": self.total_cycles,
            "register_writes": self.register_writes,
            "conflicts": self.conflicts,
            "retries": self.retries,
            "failed": self.failed,
        }


class DistributedConfigurationModel:
    """Timed model of centralized versus distributed configuration.

    Costs are expressed in network cycles per remote register write, per
    local register write and per acknowledgement round-trip; the defaults are
    calibrated from the cycle-accurate centralized configuration measured in
    experiment E7.
    """

    def __init__(self, num_slots: int = 8,
                 remote_write_cycles: int = 30,
                 local_write_cycles: int = 2,
                 ack_cycles: int = 60,
                 retry_penalty_cycles: int = 40,
                 router_slot_write_cycles: int = 30,
                 snapshot_staleness: int = 1) -> None:
        self.num_slots = num_slots
        self.remote_write_cycles = remote_write_cycles
        self.local_write_cycles = local_write_cycles
        self.ack_cycles = ack_cycles
        self.retry_penalty_cycles = retry_penalty_cycles
        self.router_slot_write_cycles = router_slot_write_cycles
        self.snapshot_staleness = max(0, snapshot_staleness)

    # ------------------------------------------------------------ centralized
    def run_centralized(self, jobs: List[ConfigJob]) -> ConfigModelResult:
        """One configuration port, global slot knowledge, no conflicts."""
        allocator = CentralizedSlotAllocator(self.num_slots)
        total_cycles = 0
        writes = 0
        failed = 0
        for job in jobs:
            ok = True
            for request in job.slot_requests:
                if allocator.try_allocate(request) is None:
                    ok = False
            if not ok:
                failed += 1
                continue
            writes += job.register_writes
            total_cycles += (job.register_writes * self.remote_write_cycles
                             + self.ack_cycles)
        return ConfigModelResult(model="centralized", ports=1,
                                 total_cycles=total_cycles,
                                 register_writes=writes, conflicts=0,
                                 retries=0, failed=failed)

    # ------------------------------------------------------------ distributed
    def run_distributed(self, jobs: List[ConfigJob],
                        ports: int = 2) -> ConfigModelResult:
        """Several configuration ports working concurrently.

        Slot information lives in the routers; each port computes tentative
        reservations from a snapshot that may be ``snapshot_staleness`` jobs
        old, so concurrent ports can pick conflicting slots.  A rejected
        tentative reservation costs a retry round-trip and is re-attempted
        with fresh information.
        """
        if ports <= 0:
            raise ConfigurationError("need at least one configuration port")
        allocator = CentralizedSlotAllocator(self.num_slots)
        port_cycles = [0] * ports
        conflicts = 0
        retries = 0
        failed = 0
        writes = 0
        # Snapshot of link occupancy seen by each port, refreshed lazily.
        stale_view: Dict[int, Dict] = {p: {} for p in range(ports)}
        jobs_since_refresh = [self.snapshot_staleness + 1] * ports

        for index, job in enumerate(jobs):
            port = index % ports
            # Routers also hold slot tables in the distributed model, so every
            # GT slot costs an extra router register write.
            slot_writes = sum(req.slots_required * len(req.link_ids)
                              for req in job.slot_requests)
            cost = (job.register_writes * self.remote_write_cycles
                    + slot_writes * self.router_slot_write_cycles
                    + self.ack_cycles)
            job_failed = False
            for request in job.slot_requests:
                if jobs_since_refresh[port] > self.snapshot_staleness:
                    stale_view[port] = {
                        lid: set(table.free_slots())
                        for lid, table in allocator._link_tables.items()}
                    jobs_since_refresh[port] = 0
                tentative = self._tentative_choice(request, stale_view[port])
                granted = allocator.try_allocate(request)
                if granted is None:
                    job_failed = True
                    continue
                if tentative is not None and set(granted) != set(tentative):
                    # The stale view suggested different slots: the routers
                    # rejected the tentative reservation and a retry happened.
                    conflicts += 1
                    retries += 1
                    cost += self.retry_penalty_cycles
            jobs_since_refresh[port] += 1
            if job_failed:
                failed += 1
            writes += job.register_writes + slot_writes
            port_cycles[port] += cost
        return ConfigModelResult(model="distributed", ports=ports,
                                 total_cycles=max(port_cycles) if port_cycles else 0,
                                 register_writes=writes, conflicts=conflicts,
                                 retries=retries, failed=failed)

    def _tentative_choice(self, request: SlotRequest,
                          stale_free: Dict) -> Optional[List[int]]:
        """The injection slots a port would pick from its stale snapshot."""
        if not stale_free:
            return None
        candidates = []
        for slot in range(self.num_slots):
            ok = True
            for hop, link_id in enumerate(request.link_ids):
                free = stale_free.get(link_id)
                if free is not None and (slot + hop) % self.num_slots not in free:
                    ok = False
                    break
            if ok:
                candidates.append(slot)
        if len(candidates) < request.slots_required:
            return None
        return candidates[:request.slots_required]
