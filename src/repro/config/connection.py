"""Connection specifications and the register programs that open them.

A connection is composed of unidirectional point-to-point channels between a
master and one or more slaves (Section 2).  Opening a connection means
writing a handful of registers at the master-side and slave-side NIs (paper:
5 and 3 registers respectively per master-slave pair) and reserving the TDM
slots of any guaranteed-throughput channel.

:func:`build_open_program` turns a :class:`ConnectionSpec` plus the allocated
slots into the ordered list of :class:`RegisterWrite` operations — the same
program is executed either instantly by the functional configurator (tests)
or as DTL-MMIO transactions over the NoC by the centralized configuration
manager (Figure 9, experiments E6/E7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.kernel import NIKernel
from repro.core.registers import (
    REG_CREDIT_THRESHOLD,
    REG_CTRL,
    REG_DATA_THRESHOLD,
    REG_PATH,
    REG_REMOTE_QID,
    REG_SPACE,
    channel_register_address,
    encode_ctrl,
    encode_path,
    slot_register_address,
)
from repro.network.noc import NoC


class ConnectionError_(ValueError):
    """Raised for inconsistent connection specifications."""


@dataclass(frozen=True)
class ChannelEndpointRef:
    """A channel at a named NI (by global channel index within that NI)."""

    ni: str
    channel: int


@dataclass
class ChannelPairSpec:
    """One master-slave pair of a connection: a request channel (master to
    slave) and a response channel (slave to master)."""

    master: ChannelEndpointRef
    slave: ChannelEndpointRef
    request_gt: bool = False
    request_slots: int = 0
    response_gt: bool = False
    response_slots: int = 0
    data_threshold: int = 1
    credit_threshold: int = 1

    def __post_init__(self) -> None:
        if self.request_gt and self.request_slots <= 0:
            raise ConnectionError_("GT request channel needs at least one slot")
        if self.response_gt and self.response_slots <= 0:
            raise ConnectionError_("GT response channel needs at least one slot")


@dataclass
class ConnectionSpec:
    """A complete connection: point-to-point, narrowcast or multicast.

    ``routing`` optionally overrides the NoC's default routing strategy for
    every channel of this connection (a registered strategy name or a
    :class:`~repro.network.routing.RoutingStrategy` instance); ``None``
    keeps the NoC default.
    """

    name: str
    kind: str = "p2p"  # p2p | narrowcast | multicast
    pairs: List[ChannelPairSpec] = field(default_factory=list)
    routing: Optional[object] = None

    def __post_init__(self) -> None:
        if self.kind not in ("p2p", "narrowcast", "multicast"):
            raise ConnectionError_(f"unknown connection kind {self.kind!r}")
        if self.kind == "p2p" and len(self.pairs) > 1:
            raise ConnectionError_("a point-to-point connection has one pair")

    @property
    def master_ni(self) -> str:
        if not self.pairs:
            raise ConnectionError_(f"connection {self.name} has no pairs")
        return self.pairs[0].master.ni

    def gt_channel_requests(self) -> List[Tuple[ChannelEndpointRef,
                                                ChannelEndpointRef, int]]:
        """(source endpoint, destination endpoint, slots) for each GT channel."""
        requests = []
        for pair in self.pairs:
            if pair.request_gt:
                requests.append((pair.master, pair.slave, pair.request_slots))
            if pair.response_gt:
                requests.append((pair.slave, pair.master, pair.response_slots))
        return requests


@dataclass
class RegisterWrite:
    """One register write of a configuration program."""

    ni: str
    address: int
    value: int
    #: The final write of a program requests an acknowledgement (Figure 9).
    acknowledged: bool = False
    note: str = ""


def _channel_program(source_ni: str, source_kernel: NIKernel,
                     source_channel: int, dest_kernel: NIKernel,
                     dest_channel: int, path: Tuple[int, ...],
                     gt: bool, slots: List[int],
                     data_threshold: int, credit_threshold: int,
                     note: str) -> List[RegisterWrite]:
    """Register writes that open one unidirectional channel at its source NI."""
    dest_queue_words = dest_kernel.channel(dest_channel).dest_queue.capacity
    writes = [
        RegisterWrite(source_ni,
                      channel_register_address(source_channel, REG_PATH),
                      encode_path(path), note=f"{note}: path"),
        RegisterWrite(source_ni,
                      channel_register_address(source_channel, REG_REMOTE_QID),
                      dest_channel, note=f"{note}: remote queue id"),
        RegisterWrite(source_ni,
                      channel_register_address(source_channel, REG_SPACE),
                      dest_queue_words, note=f"{note}: space (remote buffer)"),
    ]
    if data_threshold != 1:
        writes.append(RegisterWrite(
            source_ni,
            channel_register_address(source_channel, REG_DATA_THRESHOLD),
            data_threshold, note=f"{note}: data threshold"))
    if credit_threshold != 1:
        writes.append(RegisterWrite(
            source_ni,
            channel_register_address(source_channel, REG_CREDIT_THRESHOLD),
            credit_threshold, note=f"{note}: credit threshold"))
    for slot in slots:
        writes.append(RegisterWrite(source_ni, slot_register_address(slot),
                                    source_channel + 1,
                                    note=f"{note}: slot {slot}"))
    writes.append(RegisterWrite(source_ni,
                                channel_register_address(source_channel, REG_CTRL),
                                encode_ctrl(True, gt),
                                note=f"{note}: enable"))
    return writes


def build_open_program(noc: NoC, kernels: Dict[str, NIKernel],
                       spec: ConnectionSpec,
                       slot_assignment: Optional[Dict[Tuple[str, int],
                                                      List[int]]] = None
                       ) -> List[RegisterWrite]:
    """The register writes that open every channel of ``spec``.

    ``slot_assignment`` maps (NI name, channel index) of each GT channel onto
    its NI injection slots (produced by the slot allocator).  Channels are
    opened in the order of Figure 9: for each pair, first the response
    channel (slave to master), then the request channel (master to slave), so
    that by the time the master can send, the return path exists.  The last
    write of the whole program is marked ``acknowledged``.
    """
    slot_assignment = slot_assignment or {}
    writes: List[RegisterWrite] = []
    for pair in spec.pairs:
        master_kernel = _kernel(kernels, pair.master.ni)
        slave_kernel = _kernel(kernels, pair.slave.ni)
        response_slots = slot_assignment.get((pair.slave.ni, pair.slave.channel), [])
        request_slots = slot_assignment.get((pair.master.ni, pair.master.channel), [])
        # Step 3 of Figure 9: response channel (slave -> master).
        writes.extend(_channel_program(
            source_ni=pair.slave.ni, source_kernel=slave_kernel,
            source_channel=pair.slave.channel,
            dest_kernel=master_kernel, dest_channel=pair.master.channel,
            path=noc.route(pair.slave.ni, pair.master.ni,
                           routing=spec.routing),
            gt=pair.response_gt, slots=response_slots,
            data_threshold=pair.data_threshold,
            credit_threshold=pair.credit_threshold,
            note=f"{spec.name}: response {pair.slave.ni}->{pair.master.ni}"))
        # Step 4 of Figure 9: request channel (master -> slave).
        writes.extend(_channel_program(
            source_ni=pair.master.ni, source_kernel=master_kernel,
            source_channel=pair.master.channel,
            dest_kernel=slave_kernel, dest_channel=pair.slave.channel,
            path=noc.route(pair.master.ni, pair.slave.ni,
                           routing=spec.routing),
            gt=pair.request_gt, slots=request_slots,
            data_threshold=pair.data_threshold,
            credit_threshold=pair.credit_threshold,
            note=f"{spec.name}: request {pair.master.ni}->{pair.slave.ni}"))
    if writes:
        writes[-1].acknowledged = True
    return writes


def build_close_program(kernels: Dict[str, NIKernel],
                        spec: ConnectionSpec,
                        slot_assignment: Optional[Dict[Tuple[str, int],
                                                       List[int]]] = None
                        ) -> List[RegisterWrite]:
    """Disable every channel of a connection and release its slots."""
    slot_assignment = slot_assignment or {}
    writes: List[RegisterWrite] = []
    for pair in spec.pairs:
        for endpoint in (pair.master, pair.slave):
            _kernel(kernels, endpoint.ni)  # existence check
            for slot in slot_assignment.get((endpoint.ni, endpoint.channel), []):
                writes.append(RegisterWrite(endpoint.ni,
                                            slot_register_address(slot), 0,
                                            note=f"{spec.name}: free slot {slot}"))
            writes.append(RegisterWrite(
                endpoint.ni,
                channel_register_address(endpoint.channel, REG_CTRL),
                encode_ctrl(False, False),
                note=f"{spec.name}: disable {endpoint.ni}.ch{endpoint.channel}"))
    if writes:
        writes[-1].acknowledged = True
    return writes


def count_register_writes(program: List[RegisterWrite]) -> Dict[str, int]:
    """Register writes per NI (experiment E7 reports these counts)."""
    counts: Dict[str, int] = {}
    for write in program:
        counts[write.ni] = counts.get(write.ni, 0) + 1
    return counts


def _kernel(kernels: Dict[str, NIKernel], name: str) -> NIKernel:
    try:
        return kernels[name]
    except KeyError as exc:
        raise ConnectionError_(f"unknown NI {name!r}") from exc
