"""TDM slot allocation.

Guaranteed-throughput channels are "pipelined time-division-multiplexed
circuits over the network" (Section 2): a channel that injects a flit at its
NI in slot ``s`` occupies link ``i`` of its path during slot ``(s + i) mod S``.
The allocator's job is to pick, for every GT channel, a set of NI injection
slots such that no link is claimed by two channels in the same slot.

:class:`CentralizedSlotAllocator` keeps the global view of every link's slot
table (the centralized model of Section 3, where slot tables can be removed
from the routers).  Injection slots are chosen evenly spaced when possible,
which minimizes the jitter bound (the maximum distance between two slot
reservations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.network.noc import LinkId, NoC
from repro.network.slot_table import SlotTable


class SlotAllocationError(RuntimeError):
    """Raised when a request cannot be satisfied."""


@dataclass
class SlotRequest:
    """A request to reserve slots for one GT channel."""

    ni: str                      #: source NI name
    channel: int                 #: channel index at the source NI
    slots_required: int          #: number of slots (throughput = N/S * link bw)
    link_ids: List[LinkId]       #: links along the path, in traversal order

    def __post_init__(self) -> None:
        if self.slots_required <= 0:
            raise SlotAllocationError("a GT channel needs at least one slot")
        if not self.link_ids:
            raise SlotAllocationError("a GT channel needs a path")

    @property
    def owner(self) -> Tuple[str, int]:
        return (self.ni, self.channel)


def evenly_spaced_slots(num_slots: int, count: int,
                        offset: int = 0) -> List[int]:
    """``count`` slot indices spread as evenly as possible over the table."""
    if count <= 0 or count > num_slots:
        raise SlotAllocationError(
            f"cannot pick {count} slots from a table of {num_slots}")
    return sorted({(offset + (i * num_slots) // count) % num_slots
                   for i in range(count)})


class CentralizedSlotAllocator:
    """Global (per-link) slot bookkeeping and greedy allocation.

    ``policy`` selects how the required slots are picked from the
    compatible candidates:

    * ``"spread"`` (default) — as evenly spaced as possible, which
      minimizes injection jitter (each packet is one flit, sent the cycle
      its slot comes up);
    * ``"contiguous"`` — as one run of consecutive slots when available.
      Consecutive slots let the NI packetize one header for the whole run
      (``FLIT_WORDS * run - 1`` payload words), cutting header overhead,
      and are what the batched flit pipeline forwards as single bursts.
      Falls back to the spread choice when no long-enough run is free.
    """

    def __init__(self, num_slots: int, policy: str = "spread") -> None:
        if num_slots <= 0:
            raise SlotAllocationError("slot table size must be positive")
        if policy not in ("spread", "contiguous"):
            raise SlotAllocationError(
                f"unknown slot allocation policy {policy!r}")
        self.num_slots = num_slots
        self.policy = policy
        self._link_tables: Dict[LinkId, SlotTable] = {}
        self._allocations: Dict[Tuple[str, int], "Allocation"] = {}

    # ----------------------------------------------------------------- query
    def link_table(self, link_id: LinkId) -> SlotTable:
        table = self._link_tables.get(link_id)
        if table is None:
            table = SlotTable(self.num_slots)
            self._link_tables[link_id] = table
        return table

    def allocation_of(self, ni: str, channel: int) -> Optional["Allocation"]:
        return self._allocations.get((ni, channel))

    def link_occupancy(self) -> Dict[LinkId, float]:
        return {lid: table.occupancy()
                for lid, table in self._link_tables.items()}

    def total_reserved_slots(self) -> int:
        return sum(len(table.free_slots()) * 0 +
                   (table.size - len(table.free_slots()))
                   for table in self._link_tables.values())

    # ------------------------------------------------------------ allocation
    def injection_slot_free(self, request: SlotRequest, slot: int) -> bool:
        """Is injection slot ``slot`` free on every link of the path?"""
        for hop, link_id in enumerate(request.link_ids):
            link_slot = (slot + hop) % self.num_slots
            if not self.link_table(link_id).is_free(link_slot):
                return False
        return True

    def free_injection_slots(self, request: SlotRequest) -> List[int]:
        return [s for s in range(self.num_slots)
                if self.injection_slot_free(request, s)]

    def allocate(self, request: SlotRequest) -> List[int]:
        """Reserve ``slots_required`` injection slots for the request.

        Raises :class:`SlotAllocationError` when the path cannot provide the
        requested bandwidth.
        """
        if request.owner in self._allocations:
            raise SlotAllocationError(
                f"channel {request.owner} already has an allocation")
        candidates = self.free_injection_slots(request)
        if len(candidates) < request.slots_required:
            raise SlotAllocationError(
                f"cannot reserve {request.slots_required} slots for channel "
                f"{request.owner}: only {len(candidates)} compatible slots left")
        if self.policy == "contiguous":
            chosen = self._pick_contiguous(candidates, request.slots_required)
            if chosen is None:
                chosen = self._pick_spread(candidates, request.slots_required)
        else:
            chosen = self._pick_spread(candidates, request.slots_required)
        for slot in chosen:
            self._reserve(request, slot)
        allocation = Allocation(request=request, injection_slots=chosen)
        self._allocations[request.owner] = allocation
        return chosen

    def try_allocate(self, request: SlotRequest) -> Optional[List[int]]:
        """Like :meth:`allocate` but returns None instead of raising."""
        try:
            return self.allocate(request)
        except SlotAllocationError:
            return None

    def release(self, ni: str, channel: int) -> None:
        allocation = self._allocations.pop((ni, channel), None)
        if allocation is None:
            return
        for slot in allocation.injection_slots:
            for hop, link_id in enumerate(allocation.request.link_ids):
                link_slot = (slot + hop) % self.num_slots
                self.link_table(link_id).release(link_slot)

    def _reserve(self, request: SlotRequest, slot: int) -> None:
        for hop, link_id in enumerate(request.link_ids):
            link_slot = (slot + hop) % self.num_slots
            self.link_table(link_id).reserve(link_slot, request.owner)

    def _pick_contiguous(self, candidates: Sequence[int],
                         count: int) -> Optional[List[int]]:
        """A run of ``count`` consecutive candidate slots (wrapping), or None.

        Among all such runs, the one starting at the lowest slot index is
        chosen (deterministic across runs).
        """
        free = set(candidates)
        num_slots = self.num_slots
        for start in sorted(free):
            if all((start + i) % num_slots in free for i in range(count)):
                return sorted((start + i) % num_slots for i in range(count))
        return None

    def _pick_spread(self, candidates: Sequence[int], count: int) -> List[int]:
        """Pick ``count`` candidates as evenly spaced as possible (low jitter)."""
        if count == len(candidates):
            return sorted(candidates)
        ideal = evenly_spaced_slots(self.num_slots, count)
        chosen: List[int] = []
        remaining = sorted(candidates)
        for target in ideal:
            best = min(remaining,
                       key=lambda s: min((s - target) % self.num_slots,
                                         (target - s) % self.num_slots))
            chosen.append(best)
            remaining.remove(best)
        return sorted(chosen)

    # ----------------------------------------------------------- NI programs
    def assignment_map(self) -> Dict[Tuple[str, int], List[int]]:
        """(NI, channel) -> injection slots, the shape build_open_program wants."""
        return {owner: list(alloc.injection_slots)
                for owner, alloc in self._allocations.items()}


@dataclass
class Allocation:
    """The result of a successful slot allocation."""

    request: SlotRequest
    injection_slots: List[int] = field(default_factory=list)

    @property
    def slots_reserved(self) -> int:
        return len(self.injection_slots)


def build_requests_for_connection(noc: NoC, spec,
                                  num_slots: int) -> List[SlotRequest]:
    """Slot requests for every GT channel of a connection spec."""
    requests: List[SlotRequest] = []
    routing = getattr(spec, "routing", None)
    for source, dest, slots in spec.gt_channel_requests():
        requests.append(SlotRequest(
            ni=source.ni, channel=source.channel, slots_required=slots,
            link_ids=noc.route_link_ids(source.ni, dest.ni,
                                        routing=routing)))
    del num_slots
    return requests
