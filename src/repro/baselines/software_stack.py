"""Software protocol-stack baseline.

Section 5 of the paper argues for a hardware protocol stack by comparing its
4-10 cycle latency overhead against a software implementation, citing 47
instructions *for packetization only* in the NI of Bhojwani & Mahapatra
(reference [4]).  This model turns an instruction budget, a CPI and a core
clock into cycles and nanoseconds so experiment E3 can reproduce the
comparison, and also derives the message-rate ceiling a software stack
imposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.design.timing import (
    PROTOTYPE_FREQUENCY_MHZ,
    SOFTWARE_PACKETIZATION_INSTRUCTIONS,
)


@dataclass
class SoftwareStackModel:
    """A software NI protocol stack running on an embedded core."""

    packetization_instructions: int = SOFTWARE_PACKETIZATION_INSTRUCTIONS
    #: Instructions for the remaining per-message work (header parsing,
    #: flow-control bookkeeping, scheduling); the paper only quotes the
    #: packetization cost, so this defaults to zero for a conservative
    #: comparison.
    other_instructions: int = 0
    cycles_per_instruction: float = 1.0
    core_frequency_mhz: float = PROTOTYPE_FREQUENCY_MHZ

    def __post_init__(self) -> None:
        if self.packetization_instructions <= 0:
            raise ValueError("instruction count must be positive")
        if self.cycles_per_instruction <= 0:
            raise ValueError("CPI must be positive")
        if self.core_frequency_mhz <= 0:
            raise ValueError("core frequency must be positive")

    # --------------------------------------------------------------- latency
    @property
    def instructions_per_message(self) -> int:
        return self.packetization_instructions + self.other_instructions

    @property
    def cycles_per_message(self) -> float:
        return self.instructions_per_message * self.cycles_per_instruction

    @property
    def latency_ns(self) -> float:
        return self.cycles_per_message * 1e3 / self.core_frequency_mhz

    # ------------------------------------------------------------ throughput
    @property
    def max_messages_per_second(self) -> float:
        """The software stack serializes messages on the core."""
        return self.core_frequency_mhz * 1e6 / self.cycles_per_message

    def max_payload_gbit_s(self, words_per_message: int,
                           word_bits: int = 32) -> float:
        """Payload bandwidth ceiling imposed by per-message software cost."""
        if words_per_message <= 0:
            raise ValueError("messages must carry at least one word")
        return (self.max_messages_per_second * words_per_message * word_bits
                / 1e9)

    # ------------------------------------------------------------ comparison
    def compare_with_hardware(self, hardware_cycles: int,
                              hardware_frequency_mhz: float =
                              PROTOTYPE_FREQUENCY_MHZ) -> Dict[str, float]:
        """Latency comparison rows for experiment E3."""
        hardware_ns = hardware_cycles * 1e3 / hardware_frequency_mhz
        return {
            "software_cycles": self.cycles_per_message,
            "software_ns": self.latency_ns,
            "hardware_cycles": float(hardware_cycles),
            "hardware_ns": hardware_ns,
            "cycle_ratio": self.cycles_per_message / hardware_cycles,
            "latency_ratio": self.latency_ns / hardware_ns,
        }
