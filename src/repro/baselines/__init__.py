"""Baselines the paper compares against or argues to replace.

* :mod:`repro.baselines.software_stack` — a network interface whose protocol
  stack runs in software on an embedded core (the Bhojwani & Mahapatra
  comparison point: 47 instructions for packetization alone).
* :mod:`repro.baselines.bus` — a shared on-chip bus with round-robin or TDMA
  arbitration, the interconnect NoCs are meant to replace (scalability
  claim (c) of the introduction).
"""

from repro.baselines.bus import BusSimulationResult, SharedBus, SharedBusMaster
from repro.baselines.software_stack import SoftwareStackModel

__all__ = [
    "BusSimulationResult",
    "SharedBus",
    "SharedBusMaster",
    "SoftwareStackModel",
]
