"""Statistics collection for the cycle model.

The NI and router models record throughput, latency and jitter through these
collectors; the analysis layer (:mod:`repro.analysis`) compares them against
the analytic bounds of Section 2 of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Counter:
    """A monotonically increasing event counter."""

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter.increment requires a non-negative amount")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A simple histogram over integer samples (latencies, packet lengths)."""

    def __init__(self, name: str = "histogram") -> None:
        self.name = name
        self._bins: Dict[int, int] = {}
        self._count = 0
        self._total = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None

    def add(self, sample: int, weight: int = 1) -> None:
        self._bins[sample] = self._bins.get(sample, 0) + weight
        self._count += weight
        self._total += sample * weight
        if self._min is None or sample < self._min:
            self._min = sample
        if self._max is None or sample > self._max:
            self._max = sample

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else float("nan")

    @property
    def minimum(self) -> Optional[int]:
        return self._min

    @property
    def maximum(self) -> Optional[int]:
        return self._max

    def percentile(self, p: float) -> Optional[int]:
        """Return the smallest sample at or above the ``p``-th percentile."""
        if not self._count:
            return None
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        threshold = math.ceil(self._count * p / 100.0)
        running = 0
        for sample in sorted(self._bins):
            running += self._bins[sample]
            if running >= threshold:
                return sample
        return self._max

    def to_dict(self) -> Dict[int, int]:
        return dict(sorted(self._bins.items()))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Histogram({self.name}, n={self._count}, "
                f"min={self._min}, mean={self.mean:.2f}, max={self._max})")


class LatencyRecorder:
    """Records (start, end) pairs and exposes latency statistics in cycles."""

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self.histogram = Histogram(name)
        self._samples: List[int] = []

    def record(self, start_cycle: int, end_cycle: int) -> None:
        if end_cycle < start_cycle:
            raise ValueError("latency sample ends before it starts")
        latency = end_cycle - start_cycle
        self.histogram.add(latency)
        self._samples.append(latency)

    @property
    def samples(self) -> List[int]:
        return list(self._samples)

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def mean(self) -> float:
        return self.histogram.mean

    @property
    def maximum(self) -> Optional[int]:
        return self.histogram.maximum

    @property
    def minimum(self) -> Optional[int]:
        return self.histogram.minimum

    @property
    def jitter(self) -> Optional[int]:
        """Worst-case spread (max - min) of recorded latencies."""
        if not self._samples:
            return None
        return self.histogram.maximum - self.histogram.minimum


class RateMeter:
    """Measures throughput: items (words, flits, bytes) over a cycle window."""

    def __init__(self, name: str = "rate") -> None:
        self.name = name
        self.items = 0
        self._first_cycle: Optional[int] = None
        self._last_cycle: Optional[int] = None

    def add(self, cycle: int, amount: int = 1) -> None:
        if self._first_cycle is None:
            self._first_cycle = cycle
        self._last_cycle = cycle
        self.items += amount

    def rate_per_cycle(self, window_cycles: Optional[int] = None) -> float:
        """Items per cycle over the observation window (or a supplied window)."""
        if window_cycles is not None:
            if window_cycles <= 0:
                raise ValueError("window must be positive")
            return self.items / window_cycles
        if self._first_cycle is None or self._last_cycle is None:
            return 0.0
        span = self._last_cycle - self._first_cycle + 1
        return self.items / span if span > 0 else 0.0

    def throughput_gbit_s(self, window_cycles: int, frequency_mhz: float,
                          bits_per_item: int = 32) -> float:
        """Convert the measured rate into Gbit/s at the given clock."""
        per_cycle = self.rate_per_cycle(window_cycles)
        return per_cycle * bits_per_item * frequency_mhz / 1000.0


@dataclass
class StatsRegistry:
    """A named collection of collectors, used per NI / router / system."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    latencies: Dict[str, LatencyRecorder] = field(default_factory=dict)
    rates: Dict[str, RateMeter] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        return self.counters.setdefault(name, Counter(name))

    def histogram(self, name: str) -> Histogram:
        return self.histograms.setdefault(name, Histogram(name))

    def latency(self, name: str) -> LatencyRecorder:
        return self.latencies.setdefault(name, LatencyRecorder(name))

    def rate(self, name: str) -> RateMeter:
        return self.rates.setdefault(name, RateMeter(name))

    def summary(self) -> Dict[str, object]:
        """A flat, printable snapshot of every collector."""
        out: Dict[str, object] = {}
        for name, counter in self.counters.items():
            out[f"counter.{name}"] = counter.value
        for name, histogram in self.histograms.items():
            out[f"histogram.{name}.count"] = histogram.count
            out[f"histogram.{name}.mean"] = histogram.mean
            out[f"histogram.{name}.max"] = histogram.maximum
        for name, latency in self.latencies.items():
            out[f"latency.{name}.count"] = latency.count
            out[f"latency.{name}.mean"] = latency.mean
            out[f"latency.{name}.max"] = latency.maximum
        for name, rate in self.rates.items():
            out[f"rate.{name}.items"] = rate.items
        return out
