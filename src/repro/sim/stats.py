"""Statistics collection for the cycle model.

The NI and router models record throughput, latency and jitter through these
collectors; the analysis layer (:mod:`repro.analysis`) compares them against
the analytic bounds of Section 2 of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

try:  # NumPy accelerates the columnar paths when present; never required.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the base image
    _np = None


class Counter:
    """A monotonically increasing event counter."""

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter.increment requires a non-negative amount")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A simple histogram over integer samples (latencies, packet lengths)."""

    def __init__(self, name: str = "histogram") -> None:
        self.name = name
        self._bins: Dict[int, int] = {}
        self._count = 0
        self._total = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None

    def add(self, sample: int, weight: int = 1) -> None:
        self._bins[sample] = self._bins.get(sample, 0) + weight
        self._count += weight
        self._total += sample * weight
        if self._min is None or sample < self._min:
            self._min = sample
        if self._max is None or sample > self._max:
            self._max = sample

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else float("nan")

    @property
    def minimum(self) -> Optional[int]:
        return self._min

    @property
    def maximum(self) -> Optional[int]:
        return self._max

    def percentile(self, p: float) -> Optional[int]:
        """Return the smallest sample at or above the ``p``-th percentile."""
        if not self._count:
            return None
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        threshold = math.ceil(self._count * p / 100.0)
        running = 0
        for sample in sorted(self._bins):
            running += self._bins[sample]
            if running >= threshold:
                return sample
        return self._max

    def to_dict(self) -> Dict[int, int]:
        return dict(sorted(self._bins.items()))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Histogram({self.name}, n={self._count}, "
                f"min={self._min}, mean={self.mean:.2f}, max={self._max})")


class LatencyRecorder:
    """Records (start, end) pairs and exposes latency statistics in cycles."""

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self.histogram = Histogram(name)
        self._samples: List[int] = []

    def record(self, start_cycle: int, end_cycle: int) -> None:
        if end_cycle < start_cycle:
            raise ValueError("latency sample ends before it starts")
        latency = end_cycle - start_cycle
        self.histogram.add(latency)
        self._samples.append(latency)

    @property
    def samples(self) -> List[int]:
        return list(self._samples)

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def mean(self) -> float:
        return self.histogram.mean

    @property
    def maximum(self) -> Optional[int]:
        return self.histogram.maximum

    @property
    def minimum(self) -> Optional[int]:
        return self.histogram.minimum

    @property
    def jitter(self) -> Optional[int]:
        """Worst-case spread (max - min) of recorded latencies."""
        if not self._samples:
            return None
        return self.histogram.maximum - self.histogram.minimum


class RateMeter:
    """Measures throughput: items (words, flits, bytes) over a cycle window."""

    def __init__(self, name: str = "rate") -> None:
        self.name = name
        self.items = 0
        self._first_cycle: Optional[int] = None
        self._last_cycle: Optional[int] = None

    def add(self, cycle: int, amount: int = 1) -> None:
        if self._first_cycle is None:
            self._first_cycle = cycle
        self._last_cycle = cycle
        self.items += amount

    def add_run(self, first_cycle: int, count: int,
                per_cycle: int = 1) -> None:
        """Record ``count`` cycles of activity starting at ``first_cycle``.

        The batched pipeline's one-call-per-burst replacement for ``count``
        individual :meth:`add` calls: totals and the observation window end
        up identical.
        """
        if count <= 0:
            return
        if self._first_cycle is None:
            self._first_cycle = first_cycle
        self._last_cycle = first_cycle + count - 1
        self.items += count * per_cycle

    def rate_per_cycle(self, window_cycles: Optional[int] = None) -> float:
        """Items per cycle over the observation window (or a supplied window)."""
        if window_cycles is not None:
            if window_cycles <= 0:
                raise ValueError("window must be positive")
            return self.items / window_cycles
        if self._first_cycle is None or self._last_cycle is None:
            return 0.0
        span = self._last_cycle - self._first_cycle + 1
        return self.items / span if span > 0 else 0.0

    def throughput_gbit_s(self, window_cycles: int, frequency_mhz: float,
                          bits_per_item: int = 32) -> float:
        """Convert the measured rate into Gbit/s at the given clock."""
        per_cycle = self.rate_per_cycle(window_cycles)
        return per_cycle * bits_per_item * frequency_mhz / 1000.0


class WindowedRate:
    """A sliding-window rate meter (items per cycle over the last N cycles).

    Backed by a ring of per-cycle buckets.  A plain list deliberately — a
    NumPy ring would turn the dominant operation (one scalar indexed add
    per flit) into a boxed-scalar round trip, which benchmarks slower than
    the list by an order of magnitude.  Per-link bandwidth meters
    (``health_report()["links"]``) are instances of this; the batched link
    feeds them one :meth:`add_run` per burst.
    """

    __slots__ = ("window", "_buckets", "_last_cycle", "total")

    def __init__(self, window_cycles: int = 64) -> None:
        if window_cycles <= 0:
            raise ValueError("window must be positive")
        self.window = window_cycles
        self._buckets = [0] * window_cycles
        self._last_cycle = -1
        #: All items ever recorded (cumulative, like RateMeter.items).
        self.total = 0

    def _advance(self, cycle: int) -> None:
        """Zero the buckets for cycles between the last write and ``cycle``."""
        last = self._last_cycle
        if cycle <= last:
            return
        window = self.window
        buckets = self._buckets
        if cycle - last >= window:
            for i in range(window):
                buckets[i] = 0
        else:
            for c in range(last + 1, cycle + 1):
                buckets[c % window] = 0
        self._last_cycle = cycle

    def add(self, cycle: int, amount: int = 1) -> None:
        self._advance(cycle)
        self._buckets[cycle % self.window] += amount
        self.total += amount

    def add_run(self, first_cycle: int, count: int) -> None:
        """Record one item per cycle for ``count`` consecutive cycles."""
        if count <= 0:
            return
        self.total += count
        last = first_cycle + count - 1
        self._advance(last)
        buckets = self._buckets
        window = self.window
        if count >= window:
            # Only the window's worth of cycles is still observable.
            first_cycle = last - window + 1
        for c in range(first_cycle, last + 1):
            buckets[c % window] += 1

    def rate(self, now_cycle: Optional[int] = None) -> float:
        """Items per cycle over the window ending at ``now_cycle`` (or the
        last recorded cycle)."""
        if now_cycle is not None:
            self._advance(now_cycle)
        filled = sum(self._buckets)
        return float(filled) / self.window

    def snapshot(self, now_cycle: Optional[int] = None) -> Dict[str, float]:
        return {"window": float(self.window),
                "rate_per_cycle": self.rate(now_cycle),
                "total": float(self.total)}


class CounterColumn:
    """Columnar accumulator: per-flit counter bumps become array appends.

    The batched receive/forward paths accumulate amounts here (a plain
    int-list column) and :meth:`flush` the sum into the real
    :class:`Counter` at burst boundaries, so `Stats` totals are identical
    while the per-flit cost drops to an append.
    """

    __slots__ = ("counter", "_column")

    def __init__(self, counter: Counter) -> None:
        self.counter = counter
        self._column: List[int] = []

    def append(self, amount: int = 1) -> None:
        self._column.append(amount)

    @property
    def pending(self) -> int:
        return len(self._column)

    def flush(self) -> int:
        """Fold the column into the counter; returns the flushed total."""
        column = self._column
        if not column:
            return 0
        if _np is not None and len(column) > 32:
            total = int(_np.sum(_np.asarray(column, dtype=_np.int64)))
        else:
            total = sum(column)
        self.counter.value += total
        del column[:]
        return total


def flush_columns(columns: Sequence[CounterColumn]) -> None:
    """Flush a set of columnar accumulators (burst-boundary hook)."""
    for column in columns:
        column.flush()


@dataclass
class StatsRegistry:
    """A named collection of collectors, used per NI / router / system."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    latencies: Dict[str, LatencyRecorder] = field(default_factory=dict)
    rates: Dict[str, RateMeter] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        return self.counters.setdefault(name, Counter(name))

    def histogram(self, name: str) -> Histogram:
        return self.histograms.setdefault(name, Histogram(name))

    def latency(self, name: str) -> LatencyRecorder:
        return self.latencies.setdefault(name, LatencyRecorder(name))

    def rate(self, name: str) -> RateMeter:
        return self.rates.setdefault(name, RateMeter(name))

    def summary(self) -> Dict[str, object]:
        """A flat, printable snapshot of every collector."""
        out: Dict[str, object] = {}
        for name, counter in self.counters.items():
            out[f"counter.{name}"] = counter.value
        for name, histogram in self.histograms.items():
            out[f"histogram.{name}.count"] = histogram.count
            out[f"histogram.{name}.mean"] = histogram.mean
            out[f"histogram.{name}.max"] = histogram.maximum
        for name, latency in self.latencies.items():
            out[f"latency.{name}.count"] = latency.count
            out[f"latency.{name}.mean"] = latency.mean
            out[f"latency.{name}.max"] = latency.maximum
        for name, rate in self.rates.items():
            out[f"rate.{name}.items"] = rate.items
        return out
