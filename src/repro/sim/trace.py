"""Lightweight tracing of simulation activity.

Traces are optional: components accept a tracer and emit :class:`TraceEvent`
records (packet injected, flit forwarded, register written, ...).  Tests use
traces to check cycle-accurate behaviour; examples print them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional


@dataclass
class TraceEvent:
    """One trace record."""

    time_ps: int
    source: str
    kind: str
    details: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        detail_str = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[{self.time_ps:>10} ps] {self.source:<20} {self.kind:<18} {detail_str}"


class Tracer:
    """Collects trace events, optionally filtered by kind or source."""

    def __init__(self, enabled: bool = True,
                 kinds: Optional[Iterable[str]] = None,
                 max_events: Optional[int] = None) -> None:
        self.enabled = enabled
        self.kinds = set(kinds) if kinds is not None else None
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self._listeners: List[Callable[[TraceEvent], None]] = []

    def add_listener(self, listener: Callable[[TraceEvent], None]) -> None:
        self._listeners.append(listener)

    def record(self, time_ps: int, source: str, kind: str,
               **details: object) -> None:
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.max_events is not None and len(self.events) >= self.max_events:
            return
        event = TraceEvent(time_ps=time_ps, source=source, kind=kind,
                           details=dict(details))
        self.events.append(event)
        for listener in self._listeners:
            listener(event)

    def filter(self, kind: Optional[str] = None,
               source: Optional[str] = None) -> List[TraceEvent]:
        out = self.events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if source is not None:
            out = [e for e in out if e.source == source]
        return list(out)

    def clear(self) -> None:
        self.events.clear()

    def dump(self, limit: Optional[int] = None) -> str:
        events = self.events if limit is None else self.events[:limit]
        return "\n".join(str(e) for e in events)


#: A tracer that drops everything; used as the default to avoid None checks.
NULL_TRACER = Tracer(enabled=False)
