"""Lightweight tracing of simulation activity.

Traces are optional: components accept a tracer and emit :class:`TraceEvent`
records (packet injected, flit forwarded, register written, ...).  Tests use
traces to check cycle-accurate behaviour; examples print them.

For debugging at scale (the migScope-style use case) the tracer supports a
bounded **ring buffer** (``ring_buffer=N`` keeps only the N most recent
events) and a **trigger** (:meth:`Tracer.arm`): an armed tracer discards
events until the predicate fires, then starts retaining — so a whole-run
trace is never accumulated just to see the moments around a fault.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional


@dataclass
class TraceEvent:
    """One trace record."""

    time_ps: int
    source: str
    kind: str
    details: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        detail_str = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[{self.time_ps:>10} ps] {self.source:<20} {self.kind:<18} {detail_str}"


class Tracer:
    """Collects trace events, optionally filtered by kind or source."""

    def __init__(self, enabled: bool = True,
                 kinds: Optional[Iterable[str]] = None,
                 max_events: Optional[int] = None,
                 ring_buffer: Optional[int] = None) -> None:
        self.enabled = enabled
        self.kinds = set(kinds) if kinds is not None else None
        #: Stop retaining after this many events (None = unbounded).  With
        #: ``ring_buffer`` set, old events are evicted instead and this knob
        #: is ignored.
        self.max_events = max_events
        self.ring_buffer = ring_buffer
        if ring_buffer is not None:
            if ring_buffer <= 0:
                raise ValueError(f"ring_buffer must be positive, got {ring_buffer}")
            self.events = deque(maxlen=ring_buffer)
        else:
            self.events: List[TraceEvent] = []
        self._listeners: List[Callable[[TraceEvent], None]] = []
        self._trigger: Optional[Callable[[TraceEvent], bool]] = None
        #: True once the armed trigger predicate has fired (always True when
        #: no trigger is armed).
        self.triggered = True

    def add_listener(self, listener: Callable[[TraceEvent], None]) -> None:
        self._listeners.append(listener)

    def arm(self, predicate: Callable[[TraceEvent], bool]) -> None:
        """Arm a trigger: discard events until ``predicate(event)`` is true,
        then retain from that event (inclusive) onward."""
        self._trigger = predicate
        self.triggered = False

    def disarm(self) -> None:
        """Remove the trigger; retention resumes unconditionally."""
        self._trigger = None
        self.triggered = True

    def arm_on_counter(self, counter, threshold: int,
                       registry=None) -> None:
        """Arm on a counter threshold: retain from the first event recorded
        once ``counter.value >= threshold``.

        ``counter`` is either a :class:`~repro.sim.stats.Counter` or a
        counter name looked up in ``registry`` (a
        :class:`~repro.sim.stats.StatsRegistry`).  The check runs only per
        recorded event, so the simulation hot path pays nothing new; note
        that an enabled tracer already forces the per-flit pipeline
        (bursts are truncated at the arm point — see PERFORMANCE.md).
        """
        if isinstance(counter, str):
            if registry is None:
                raise ValueError(
                    "arm_on_counter needs a StatsRegistry when given a name")
            counter = registry.counter(counter)
        self.arm(lambda event: counter.value >= threshold)

    def record(self, time_ps: int, source: str, kind: str,
               **details: object) -> None:
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        if (self.ring_buffer is None and self.max_events is not None
                and len(self.events) >= self.max_events):
            return
        event = TraceEvent(time_ps=time_ps, source=source, kind=kind,
                           details=dict(details))
        if not self.triggered:
            if not self._trigger(event):
                return
            self.triggered = True
        self.events.append(event)
        for listener in self._listeners:
            listener(event)

    def filter(self, kind: Optional[str] = None,
               source: Optional[str] = None,
               predicate: Optional[Callable[[TraceEvent], bool]] = None,
               ) -> List[TraceEvent]:
        out = self.events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if source is not None:
            out = [e for e in out if e.source == source]
        if predicate is not None:
            out = [e for e in out if predicate(e)]
        return list(out)

    def clear(self) -> None:
        self.events.clear()

    def dump(self, limit: Optional[int] = None, *,
             tail: Optional[int] = None) -> str:
        """Render retained events, newest-last.

        ``tail=N`` always renders the N most recent events.  ``limit=N``
        renders the N most recent when a ring buffer is active (the
        retained window already is "the moments around the trigger", so
        the interesting end is the newest) and the N oldest otherwise
        (chronological head of an unbounded trace).
        """
        events = list(self.events)
        if tail is not None:
            events = events[-tail:] if tail > 0 else []
        elif limit is not None:
            if self.ring_buffer is not None:
                events = events[-limit:] if limit > 0 else []
            else:
                events = events[:limit]
        return "\n".join(str(e) for e in events)


#: A tracer that drops everything; used as the default to avoid None checks.
NULL_TRACER = Tracer(enabled=False)
