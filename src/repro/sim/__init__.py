"""Discrete-event, multi-clock simulation engine used by the Aethereal models.

The engine is deliberately small: a time-ordered event queue (:class:`Simulator`),
periodic clocks that drive clocked components (:class:`Clock`,
:class:`ClockedComponent`), statistics collectors (:mod:`repro.sim.stats`) and a
lightweight tracer (:mod:`repro.sim.trace`).

Time is measured in integer picoseconds so that clock domains with unrelated
frequencies (the paper allows every NI port to run at its own frequency) stay
exact and deterministic.
"""

from repro.sim.clock import (
    Clock,
    ClockedComponent,
    always_tick,
    run_cycles,
    set_default_idle_skip,
)
from repro.sim.engine import Event, Simulator
from repro.sim.stats import (
    Counter,
    Histogram,
    LatencyRecorder,
    RateMeter,
    StatsRegistry,
)
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Clock",
    "ClockedComponent",
    "always_tick",
    "run_cycles",
    "set_default_idle_skip",
    "Counter",
    "Event",
    "Histogram",
    "LatencyRecorder",
    "RateMeter",
    "Simulator",
    "StatsRegistry",
    "TraceEvent",
    "Tracer",
]
