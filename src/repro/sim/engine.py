"""Core discrete-event simulator.

The simulator keeps a heap of plain ``(time, priority, seq, callback, handle)``
tuples ordered by ``(time, priority, sequence)``.  Determinism matters a great
deal for a cycle model of hardware: two events scheduled for the same
picosecond execute in priority order, and events with equal priority execute
in the order they were scheduled.  Clocks (see :mod:`repro.sim.clock`) are
built on top of this by rescheduling themselves every period — and, since the
activity-driven rework, by *not* rescheduling themselves while every component
they drive is quiescent (see ``Clock.wake``).

Two entry points exist for scheduling:

* :meth:`Simulator.schedule_at` / :meth:`Simulator.schedule` — the public API;
  they return an :class:`Event` handle that supports cancellation.
* :meth:`Simulator._push` — the internal fast path used by clocks; it skips
  the handle allocation entirely because clock edges are never cancelled.

Cancelled events are skipped lazily when popped, but the queue is compacted
once cancellations accumulate, so ``pending_events()`` and the heap size stay
honest.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

#: Above this many live cancellations the queue is rebuilt without them
#: (amortized O(n); keeps the heap from filling up with dead entries).
_COMPACT_THRESHOLD = 64


class SimulationError(RuntimeError):
    """Raised for fatal simulation problems (e.g. scheduling in the past)."""


class Event:
    """Handle to a scheduled callback: a cancellation token.

    The heap itself stores plain tuples; this object exists only so callers
    of the public scheduling API can cancel an event later.  Cancelling an
    event that already executed (or was already cancelled) is a no-op.
    """

    __slots__ = ("time", "priority", "seq", "cancelled", "_consumed", "_sim")

    def __init__(self, time: int, priority: int, seq: int,
                 sim: "Simulator") -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.cancelled = False
        self._consumed = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        if self.cancelled or self._consumed:
            return
        self.cancelled = True
        self._sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = ("cancelled" if self.cancelled
                 else "done" if self._consumed else "pending")
        return f"Event(t={self.time}, prio={self.priority}, {state})"


#: A heap entry: (time, priority, seq, callback, handle-or-None).  ``seq`` is
#: unique, so tuple comparison never reaches the callback.
_Entry = Tuple[int, int, int, Callable[[], None], Optional[Event]]


class Simulator:
    """Time-ordered event queue with integer picosecond timestamps."""

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._queue: List[_Entry] = []
        self._running: bool = False
        self._executed_events: int = 0
        self._cancelled_count: int = 0
        self._clock_priorities: int = 0
        #: High-water mark of the heap size (telemetry).  Gating clocks may
        #: leave superseded edge events in the heap instead of cancelling
        #: them (see ``Clock._next_edge_time``); this makes the cost of that
        #: design observable in the perf harness instead of guessed at.
        self.peak_queue_len: int = 0
        #: Optional observer called as ``hook(time, priority, seq)`` right
        #: before each event executes; used by determinism tests to compare
        #: event-execution order between runs.  Leave ``None`` in production.
        self.event_hook: Optional[Callable[[int, int, int], None]] = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of callbacks executed so far (for budget checks in tests)."""
        return self._executed_events

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue) - self._cancelled_count

    def next_clock_priority(self) -> int:
        """Allocate a tick priority for a new clock (creation order).

        Giving each clock a distinct, creation-ordered priority makes the
        execution order of *coincident* edges of different clocks a defined
        property of the model (registration order) instead of an accident of
        scheduling history — which is what lets an idle-skipped clock resume
        at exactly the position an always-tick schedule would have given it.
        """
        priority = self._clock_priorities
        self._clock_priorities += 1
        return priority

    # ------------------------------------------------------------ scheduling
    def schedule_at(self, time: int, callback: Callable[[], None],
                    priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute ``time`` picoseconds.

        Scheduling strictly in the past raises :class:`SimulationError`;
        scheduling at the current time is allowed (zero-delay event).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} ps; now is {self._now} ps")
        handle = Event(time, priority, self._seq, self)
        heapq.heappush(self._queue, (time, priority, self._seq, callback,
                                     handle))
        self._seq += 1
        if len(self._queue) > self.peak_queue_len:
            self.peak_queue_len = len(self._queue)
        return handle

    def schedule(self, delay: int, callback: Callable[[], None],
                 priority: int = 0) -> Event:
        """Schedule ``callback`` ``delay`` picoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, priority)

    def _push(self, time: int, priority: int,
              callback: Callable[[], None]) -> None:
        """Fast-path scheduling without a cancellation handle (clock edges).

        Callers must not schedule in the past; clocks schedule on their own
        period grid, which the public API validates at ``start()`` time.
        """
        heapq.heappush(self._queue, (time, priority, self._seq, callback, None))
        self._seq += 1
        if len(self._queue) > self.peak_queue_len:
            self.peak_queue_len = len(self._queue)

    # -------------------------------------------------------- cancellation
    def _note_cancel(self) -> None:
        self._cancelled_count += 1
        if (self._cancelled_count > _COMPACT_THRESHOLD
                and self._cancelled_count * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries."""
        live: List[_Entry] = []
        for entry in self._queue:
            handle = entry[4]
            if handle is not None and handle.cancelled:
                handle._consumed = True
                continue
            live.append(entry)
        heapq.heapify(live)
        self._queue = live
        self._cancelled_count = 0

    # --------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the next non-cancelled event.  Returns False when empty."""
        queue = self._queue
        while queue:
            time, priority, seq, callback, handle = heapq.heappop(queue)
            if handle is not None:
                if handle.cancelled:
                    handle._consumed = True
                    self._cancelled_count -= 1
                    continue
                handle._consumed = True
            self._now = time
            if self.event_hook is not None:
                self.event_hook(time, priority, seq)
            callback()
            self._executed_events += 1
            return True
        return False

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` ps, or ``max_events``.

        ``until`` is inclusive: events scheduled exactly at ``until`` execute.
        When ``until`` is given, time always advances to it, even if the
        event queue drains earlier — with activity-driven clocks an idle
        system has an empty queue, but ``run_for`` windows must still stack
        deterministically.
        """
        executed = 0
        self._running = True
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    return
                nxt = self._peek_time()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    break
                self.step()
                executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: int) -> None:
        """Run for ``duration`` picoseconds from the current time."""
        self.run(until=self._now + duration)

    def run_until_idle(self, until: Optional[int] = None,
                       predicate: Optional[Callable[[], bool]] = None) -> bool:
        """Run until the event queue drains; returns True when it did.

        With activity-driven clocks an idle system has an *empty* queue, so
        queue exhaustion is the engine-level definition of "everything is
        quiescent" — no polling in coarse cycle chunks, no overshoot.  Unlike
        :meth:`run`, time is left at the last executed event rather than
        being advanced to ``until``, so callers can stack further runs
        without phantom idle time.

        ``until`` (inclusive, in ps) bounds the run; events scheduled later
        stay queued and False is returned.  ``predicate`` is an optional
        early-exit check evaluated between event timestamps (never mid
        timestamp, so cycle semantics stay intact): when it returns True the
        run stops and returns True even though events remain — this is how
        always-tick systems, whose clocks reschedule forever, still support
        idleness-style waits.
        """
        if predicate is not None and predicate():
            return True
        while True:
            nxt = self._peek_time()
            if nxt is None:
                return True
            if until is not None and nxt > until:
                return False
            self.run(until=nxt)
            if predicate is not None and predicate():
                return True

    def _peek_time(self) -> Optional[int]:
        """Timestamp of the next live event (discards cancelled heads)."""
        queue = self._queue
        while queue:
            handle = queue[0][4]
            if handle is not None and handle.cancelled:
                heapq.heappop(queue)
                handle._consumed = True
                self._cancelled_count -= 1
                continue
            return queue[0][0]
        return None
