"""Core discrete-event simulator.

The simulator keeps a heap of :class:`Event` objects ordered by
``(time, priority, sequence)``.  Determinism matters a great deal for a cycle
model of hardware: two events scheduled for the same picosecond execute in
priority order, and events with equal priority execute in the order they were
scheduled.  Clocks (see :mod:`repro.sim.clock`) are built on top of this by
rescheduling themselves every period.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for fatal simulation problems (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events compare by ``(time, priority, seq)`` so the heap pops them in
    deterministic order.  ``callback`` is excluded from the comparison.
    """

    time: int
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True


class Simulator:
    """Time-ordered event queue with integer picosecond timestamps."""

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._queue: List[Event] = []
        self._running: bool = False
        self._executed_events: int = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of callbacks executed so far (for budget checks in tests)."""
        return self._executed_events

    def pending_events(self) -> int:
        """Number of events still queued (cancelled events included)."""
        return len(self._queue)

    # ------------------------------------------------------------ scheduling
    def schedule_at(self, time: int, callback: Callable[[], None],
                    priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute ``time`` picoseconds.

        Scheduling strictly in the past raises :class:`SimulationError`;
        scheduling at the current time is allowed (zero-delay event).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} ps; now is {self._now} ps")
        event = Event(time=time, priority=priority, seq=self._seq,
                      callback=callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule(self, delay: int, callback: Callable[[], None],
                 priority: int = 0) -> Event:
        """Schedule ``callback`` ``delay`` picoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, priority)

    # --------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the next non-cancelled event.  Returns False when empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._executed_events += 1
            return True
        return False

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` ps, or ``max_events``.

        ``until`` is inclusive: events scheduled exactly at ``until`` execute.
        """
        executed = 0
        self._running = True
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    return
                nxt = self._peek_time()
                if until is not None and nxt is not None and nxt > until:
                    self._now = until
                    return
                if not self.step():
                    return
                executed += 1
        finally:
            self._running = False

    def run_for(self, duration: int) -> None:
        """Run for ``duration`` picoseconds from the current time."""
        self.run(until=self._now + duration)

    def _peek_time(self) -> Optional[int]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time
