"""Burst-granularity simulation controls.

The paper's TDMA slot tables make guaranteed-throughput traffic *statically
schedulable*: once a packet's head flit wins its slot, every subsequent flit
crosses each link on a known future cycle with no arbitration decision left
to take.  The batched pipeline exploits this by moving whole flit runs per
event (see ``network/link.py`` and ``core/kernel.py``) instead of one event
per flit edge.

Batching never changes results — it is gated by the byte-identity golden
tests (`tests/test_batching_equivalence.py`).  This module holds the three
control knobs those tests and the perf suite use:

* :func:`set_default_batching` / :func:`unbatched` — process-wide default,
  captured by each NI kernel at construction time (mirroring the
  ``always_tick`` pattern of :mod:`repro.sim.clock`).  The unbatched
  pipeline is the per-flit reference implementation.
* :func:`set_burst_cap` / :func:`burst_cap` — an upper bound on burst
  length.  Bursts longer than the cap are split: the prefix travels as a
  burst, the remainder per flit.  The hypothesis property test sweeps this
  knob to prove burst-boundary placement never changes delivered streams.
* :class:`BurstBarrier` — a mutable "next arbitration-visible event" cycle
  shared between the fault injector and the NI kernels.  No burst may still
  be in flight anywhere on its path when a scheduled fault event applies,
  so burst formation at cycle ``t`` of ``k`` flits over ``h`` hops requires
  ``t + k + h + 1 <= barrier.cycle``; otherwise the kernel falls back to
  the per-flit path, which is exact by construction.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

#: Sentinel cycle meaning "no scheduled event will ever truncate a burst".
#: The tick-gating layer (``sim/clock.py``) reuses it as the next-action
#: horizon meaning "this component never acts again absent stimulus": a
#: clock whose components all report it goes to sleep instead of scheduling
#: an edge that would never pop.  Both uses share one sentinel on purpose —
#: every cycle arithmetic in the simulator saturates at the same ceiling.
FAR_FUTURE = 1 << 60

_default_batching = True
_burst_cap = FAR_FUTURE


class BurstBarrier:
    """Mutable next-event cycle that truncates burst formation.

    The fault injector (``repro.faults.injector``) advances ``cycle`` to the
    next unapplied :class:`~repro.faults.plan.FaultEvent` as it ticks; NI
    kernels consult it when sizing a burst.  Systems without a fault plan
    share :data:`NO_BARRIER`.
    """

    __slots__ = ("cycle",)

    def __init__(self, cycle: int = FAR_FUTURE) -> None:
        self.cycle = cycle

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        if self.cycle >= FAR_FUTURE:
            return "BurstBarrier(<none>)"
        return f"BurstBarrier(cycle={self.cycle})"


#: Shared barrier for systems with no scheduled fault events.
NO_BARRIER = BurstBarrier()


def batching_default() -> bool:
    """Process-wide default captured by NI kernels at construction."""
    return _default_batching


def set_default_batching(enabled: bool) -> bool:
    """Set the default batching mode; returns the previous value."""
    global _default_batching
    previous = _default_batching
    _default_batching = bool(enabled)
    return previous


@contextmanager
def unbatched() -> Iterator[None]:
    """Build systems inside this context to get the per-flit reference
    pipeline (the batched-vs-unbatched golden tests use this)."""
    previous = set_default_batching(False)
    try:
        yield
    finally:
        set_default_batching(previous)


def burst_cap() -> int:
    """Current maximum burst length (flits)."""
    return _burst_cap


def set_burst_cap(cap: int) -> int:
    """Cap burst length at ``cap`` flits; returns the previous cap.

    A cap below 2 effectively disables bursting (a one-flit burst is just a
    flit).  Captured by kernels at construction time.
    """
    global _burst_cap
    if cap < 1:
        raise ValueError(f"burst cap must be >= 1, got {cap}")
    previous = _burst_cap
    _burst_cap = cap
    return previous


@contextmanager
def capped_bursts(cap: int) -> Iterator[None]:
    """Temporarily cap burst length (property tests sweep this)."""
    previous = set_burst_cap(cap)
    try:
        yield
    finally:
        set_burst_cap(previous)
