"""Clock domains for the cycle model — activity-driven.

Every NI port may run at its own frequency (Section 4.1 of the paper: the
hardware FIFOs implement the clock-domain crossing).  A :class:`Clock` fires a
rising edge every ``period_ps`` picoseconds and calls ``tick(cycle)`` on each
registered :class:`ClockedComponent`, then ``post_tick(cycle)`` on every
component that implements it.  The two-phase tick keeps same-edge evaluation
order-insensitive: components read state and compute in ``tick`` and commit
externally visible updates in ``post_tick``.

Activity-driven scheduling
--------------------------

A cycle-accurate model that ticks every component every period spends almost
all of its wall time doing nothing when the network is idle.  Clocks therefore
stop rescheduling themselves when every registered component reports
:meth:`ClockedComponent.is_idle`, and resume on an explicit
:meth:`Clock.wake` — delivered through :meth:`ClockedComponent.notify_active`
by whatever injects new stimulus (a port accepting a message, a link carrying
a flit, a configuration register write).

The wake-up contract (see ``PERFORMANCE.md`` for the full protocol):

* ``is_idle()`` may return True only when ``tick``/``post_tick`` would be
  observable no-ops (no state change, no statistics) *and* the component can
  only become active again through a stimulus that calls ``notify_active()``.
  The conservative default is False (always active), which reproduces the
  seed's always-tick behaviour for components that have not opted in.
* A woken clock fires its next edge at the first period boundary *strictly
  after* the wake time.  Coincident edges of different clocks execute in
  clock-creation order (each clock owns a distinct tick priority), so a
  clock created before its stimulators — as the flit clock is, and as any
  clock receiving immediately visible cross-domain stimulus must be — had
  already run its edge at the stimulus timestamp and observed the
  pre-stimulus state; the first edge that can react is the next one.
* Cycle indices are derived from simulation time (``(now - epoch) // period``)
  so TDMA slot alignment is preserved across skipped edges.
* A link must be registered on the same clock as its sink: the link's
  non-idleness is what keeps the sink ticking until the flit is consumed.

Next-action tick gating
-----------------------

Idle-skip is all-or-nothing per clock: a single busy component keeps every
sibling ticking every cycle.  Tick gating refines the same contract to the
component and to *future* cycles: a component may override
:meth:`ClockedComponent.next_action_cycle` to report the earliest future
cycle at which its tick/post_tick could change observable state, and the
clock skips it — and, when every component's horizon lies beyond the next
boundary, skips whole edges by scheduling directly at the earliest horizon.
The rules that make gating a pure optimization (byte-identical results):

* ``next_action_cycle(cycle)`` must be **pure** (no attribute writes) and
  may **under-estimate** (an early tick is an observable no-op by contract)
  but never over-estimate.  Returning ``cycle + 1`` is always sound.
* Any stimulus that changes what a tick would do must reach the component's
  ``notify_active()`` — the same wake hooks idle-skip relies on — which
  cancels the standing gate before waking the clock.  A standing gate is
  therefore trusted without recomputation: state feeding a pure horizon can
  only change through the component's own tick or through a notify.
* A horizon at or beyond :data:`~repro.sim.batching.FAR_FUTURE` is an
  idleness claim ("this tick never changes state again absent stimulus");
  a clock whose components are all idle or FAR-gated goes to sleep without
  leaving a never-popping event in the heap.
* Gating changes *which* edges execute, never what an executed edge does:
  within a timestamp, a component whose gate is cancelled after the tick
  loop passed it behaves exactly like the ungated component whose tick had
  already run and observed the pre-stimulus state (creation-order
  priorities make both see stimulus strictly after).

TDMA frame macro-stepping falls out of this layer: an NI kernel whose slot
table is static and whose best-effort ready-set is empty reports the next
*owned* slot as its horizon, so GT-only quiescent-BE phases execute one
kernel event per slot-table revolution per reservation run (the burst
machinery already packetizes whole owner runs; see
``NIKernel.next_action_cycle`` and PERFORMANCE.md).

Setting ``idle_skip=False`` on a clock (or globally via
:func:`set_default_idle_skip` / the :func:`always_tick` context manager)
restores the seed's unconditional rescheduling; benchmarks and the
determinism tests use this to compare both modes.  Tick gating alone is
disabled with :func:`set_default_tick_gating` / the :func:`ungated` context
manager (always-tick mode implies gating off).
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional

from repro.sim.batching import FAR_FUTURE
from repro.sim.engine import SimulationError, Simulator

#: Each clock's tick callbacks run at a distinct priority allocated in clock
#: creation order (see ``Simulator.next_clock_priority``), so coincident edges
#: of different clocks always execute earliest-created first — in both engine
#: modes.  post_tick commits run above this base on the same timestamp so all
#: ticks of a timestamp complete before any commit.
_POST_TICK_PRIORITY_BASE = 1 << 20

#: Module-wide default for ``Clock.idle_skip`` (benchmarks flip it to measure
#: the always-tick baseline).
_DEFAULT_IDLE_SKIP = True

#: Module-wide default for ``Clock.tick_gating`` (the next-action layer).
_DEFAULT_TICK_GATING = True

#: Dense-recheck amortization span, in cycles.  A component whose
#: ``next_action_cycle`` just answered "``cycle + 1``" (no skipping possible)
#: is very likely to keep answering that while traffic stays dense, so the
#: clock stops asking for this many cycles and treats the component as dense.
#: This only ever *under*-gates — the component ticks instead of skipping,
#: which is an observable no-op by contract — so results are unaffected; it
#: bounds the horizon-query overhead in the saturated regime where there is
#: nothing to skip.  Real standing gates (horizon beyond the next boundary)
#: never set a recheck window, so their expiry always recomputes eagerly and
#: TDMA macro-stepping is never delayed.
_DENSE_RECHECK_SPAN = 32


def set_default_idle_skip(enabled: bool) -> bool:
    """Set the default ``idle_skip`` for newly created clocks.

    Returns the previous default so callers can restore it.
    """
    global _DEFAULT_IDLE_SKIP
    previous = _DEFAULT_IDLE_SKIP
    _DEFAULT_IDLE_SKIP = bool(enabled)
    return previous


def set_default_tick_gating(enabled: bool) -> bool:
    """Set the default ``tick_gating`` for newly created clocks.

    Returns the previous default so callers can restore it.  Gating is
    subordinate to idle-skip: an ``idle_skip=False`` (always-tick) clock
    never gates regardless of this default, preserving the seed reference.
    """
    global _DEFAULT_TICK_GATING
    previous = _DEFAULT_TICK_GATING
    _DEFAULT_TICK_GATING = bool(enabled)
    return previous


def gating_default() -> bool:
    """The current default for ``Clock.tick_gating``."""
    return _DEFAULT_TICK_GATING


@contextlib.contextmanager
def always_tick() -> Iterator[None]:
    """Context manager: clocks built inside it use seed (always-tick) mode."""
    previous = set_default_idle_skip(False)
    try:
        yield
    finally:
        set_default_idle_skip(previous)


@contextlib.contextmanager
def ungated() -> Iterator[None]:
    """Context manager: clocks built inside it skip idle clocks but never
    gate individual components (PR 9 activity-driven semantics)."""
    previous = set_default_tick_gating(False)
    try:
        yield
    finally:
        set_default_tick_gating(previous)


class ClockedComponent:
    """Base class for anything driven by a :class:`Clock`.

    Subclasses override :meth:`tick` (compute phase) and optionally
    :meth:`post_tick` (commit phase).  Components that can be quiescent
    additionally override :meth:`is_idle` and arrange for every stimulus
    that can end the quiescence to call :meth:`notify_active`.  Components
    whose next state change is *predictable* further override
    :meth:`next_action_cycle` to let gating clocks skip them.
    """

    #: Back-reference set by :meth:`Clock.add_component`; gives the component
    #: a wake handle without threading the clock through every constructor.
    _clock: Optional["Clock"] = None
    #: Cycle before which this component's ticks are skipped by a gating
    #: clock (0 = no standing gate).  Written by the clock from
    #: :meth:`next_action_cycle` results and cleared by
    #: :meth:`notify_active`; components never write it themselves.
    _gate_until: int = 0
    #: True when the concrete class overrides :meth:`next_action_cycle`
    #: (cached by :meth:`Clock.add_component` so the per-edge horizon loop
    #: never pays a method-resolution check).
    _has_next_action: bool = False
    #: Cycle until which the clock treats this component as dense without
    #: re-querying :meth:`next_action_cycle` (see ``_DENSE_RECHECK_SPAN``).
    #: Written only by the clock; under-gates, never over-gates.
    _gate_recheck: int = 0

    def tick(self, cycle: int) -> None:  # pragma: no cover - interface default
        """Compute phase of the clock edge."""

    def post_tick(self, cycle: int) -> None:  # pragma: no cover - default
        """Commit phase of the clock edge."""

    def is_idle(self) -> bool:
        """True when ticking this component is an observable no-op.

        The default is False: components that have not implemented the
        activity protocol keep their clock running every cycle, exactly as
        the seed engine did.
        """
        return False

    def next_action_cycle(self, cycle: int) -> int:
        """Earliest future cycle at which tick/post_tick could change state.

        Called by a gating clock after this component's edge at ``cycle``
        (and only then); the returned horizon stands until the component
        ticks again or a stimulus calls :meth:`notify_active`.  Must be
        pure — no attribute writes — and may under-estimate but never
        over-estimate; :data:`~repro.sim.batching.FAR_FUTURE` means "never,
        absent stimulus" and counts as an idleness claim.  The default
        (``cycle + 1``: no skipping) is always sound.
        """
        return cycle + 1

    def notify_active(self) -> None:
        """Wake this component's clock (no-op when unclocked and awake).

        Cancels any standing next-action gate first: stimulus invalidates
        the prediction the gate was computed from.
        """
        # Inline the checks: stimulus arrives on hot paths (every word
        # pushed, every flit sent) and the clock is usually awake.
        if self._gate_until:
            self._gate_until = 0
        clock = self._clock
        if clock is not None and (clock._sleeping or clock._gated):
            clock.wake()


class Clock:
    """A periodic clock that drives registered components.

    Parameters
    ----------
    sim:
        The simulator providing the event queue.
    frequency_mhz:
        Clock frequency.  The period is rounded to an integer number of
        picoseconds (500 MHz -> 2000 ps, as used by the Aethereal router).
    name:
        Human-readable name used in traces and error messages.
    phase_ps:
        Offset of the first rising edge.
    idle_skip:
        When True (the default, see :func:`set_default_idle_skip`) the clock
        stops self-rescheduling while every component is idle and resumes on
        :meth:`wake`.  When False the clock reschedules unconditionally.
    tick_gating:
        When True (the default, see :func:`set_default_tick_gating`) the
        clock additionally honours component next-action horizons: gated
        components are skipped inside edges, and edges with no due
        component are not scheduled at all.  Requires ``idle_skip``;
        an always-tick clock never gates.
    """

    def __init__(self, sim: Simulator, frequency_mhz: float, name: str = "clk",
                 phase_ps: int = 0, idle_skip: Optional[bool] = None,
                 tick_gating: Optional[bool] = None) -> None:
        if frequency_mhz <= 0:
            raise SimulationError(f"clock {name}: frequency must be positive")
        self.sim = sim
        self.name = name
        self.frequency_mhz = float(frequency_mhz)
        # Construction-time only: the float division is rounded to an exact
        # integer period once; all subsequent time math is integral.
        self.period_ps = int(round(1e6 / frequency_mhz))  # reprolint: disable=det-float-cycles
        if self.period_ps <= 0:
            raise SimulationError(f"clock {name}: period rounds to 0 ps")
        self.phase_ps = int(phase_ps)
        self.idle_skip = (_DEFAULT_IDLE_SKIP if idle_skip is None
                          else bool(idle_skip))
        self.tick_gating = (_DEFAULT_TICK_GATING if tick_gating is None
                            else bool(tick_gating))
        #: Effective gating mode: the next-action layer rides on idle-skip's
        #: wake protocol, so always-tick clocks never gate.
        self._gating = self.idle_skip and self.tick_gating
        #: Coincident edges of different clocks run earliest-created first;
        #: a clock receiving immediately visible cross-domain stimulus (the
        #: flit clock: credits, flushes, register writes) must therefore be
        #: created before the clocks that stimulate it — which the system
        #: builders do.  This makes the strictly-after wake-up exact.
        self._tick_priority = sim.next_clock_priority()
        self._commit_priority = _POST_TICK_PRIORITY_BASE + self._tick_priority
        self._cycle = -1
        self._components: List[ClockedComponent] = []
        self._post_tick_components: List[ClockedComponent] = []
        self._started = False
        self._epoch = 0
        self._sleeping = False
        #: True while the next scheduled edge lies beyond the next period
        #: boundary (or, grouped, while this member's horizon does): a
        #: notify must then wake the clock to pull the edge forward.
        self._gated = False
        #: Absolute time of the pending edge event (-1 = none).  A gating
        #: clock may leave superseded events in the heap (wake pulls the
        #: edge forward without cancellation); ``_edge`` executes only the
        #: event matching this time, so stale events are no-ops.
        self._next_edge_time = -1
        #: Grouped members only: this member's next-action horizon in
        #: cycles (0 = due every edge; FAR_FUTURE = parked).
        self._gate_cycle = 0
        #: Clock-level dense window: while ``cycle + 1`` lies inside it the
        #: whole horizon pass is skipped and the next edge is unconditional.
        #: Set by :meth:`_gate_horizon` whenever the pass concludes "next
        #: edge anyway" — dense traffic keeps answering that, so stop
        #: asking for a while.  Pure under-gating, results unaffected.
        self._dense_recheck = 0
        #: True while any component may hold a standing gate beyond the
        #: next boundary.  Only :meth:`_gate_horizon` sets gates, so a pass
        #: that ends with none lets the edge loops drop the per-component
        #: gate check entirely (the flag may be stale-True after a notify
        #: cancels a gate — that only costs the check, never correctness).
        self._gates_standing = False
        #: Edges actually executed (telemetry for the perf harness).
        self.edges_executed = 0
        #: Number of times the clock went to sleep.
        self.sleep_count = 0
        #: Fused scheduling group (see :class:`ClockGroup`); None when this
        #: clock schedules its own edges.
        self._group: Optional["ClockGroup"] = None

    # ---------------------------------------------------------------- wiring
    def add_component(self, component: ClockedComponent) -> None:
        """Register a component; tick order follows registration order."""
        self._components.append(component)
        component._clock = self
        component._has_next_action = (
            type(component).next_action_cycle
            is not ClockedComponent.next_action_cycle)
        if type(component).post_tick is not ClockedComponent.post_tick:
            self._post_tick_components.append(component)
        # A component added to a sleeping or gated clock must get a chance
        # to tick; the next edge re-evaluates idleness and horizons.
        if self._sleeping or self._gated:
            self.wake()

    def remove_component(self, component: ClockedComponent) -> None:
        self._components.remove(component)
        if component in self._post_tick_components:
            self._post_tick_components.remove(component)
        if component._clock is self:
            component._clock = None

    @property
    def cycle(self) -> int:
        """Index of the most recent executed rising edge (-1 before the
        first edge).  With idle-skip, skipped edge instants do not appear
        here; indices stay aligned to the time grid regardless."""
        return self._cycle

    @property
    def epoch_ps(self) -> int:
        """Time of edge 0 (valid once the clock has started)."""
        return self._epoch

    @property
    def sleeping(self) -> bool:
        """True while the clock has stopped self-rescheduling."""
        return self._sleeping

    @property
    def gated(self) -> bool:
        """True while the next edge is deferred beyond the next boundary."""
        return self._gated

    @property
    def bandwidth_gbit_s(self) -> float:
        """Raw bandwidth of a 32-bit link clocked by this clock, in Gbit/s."""
        return 32.0 * self.frequency_mhz / 1000.0

    def cycles_to_ps(self, cycles: int) -> int:
        return cycles * self.period_ps

    def ps_to_cycles(self, ps: int) -> int:
        return ps // self.period_ps

    def edge_time(self, index: int) -> int:
        """Absolute time of edge ``index`` (the clock must have started)."""
        return self._epoch + index * self.period_ps

    # --------------------------------------------------------------- running
    def start(self) -> None:
        """Schedule the first rising edge.  Idempotent."""
        if self._started:
            return
        if self._group is not None:
            self._group.start()
            return
        self._started = True
        self._epoch = max(self.sim.now, self.phase_ps)
        self._sleeping = False
        self._next_edge_time = self._epoch
        self.sim.schedule_at(self._epoch, self._edge,
                             priority=self._tick_priority)

    def wake(self) -> None:
        """Resume an idle-skipped (or gate-deferred) clock.

        The next edge fires at the first period boundary strictly after the
        current simulation time — the first edge that can observe the
        stimulus that triggered the wake.  Because coincident edges run in
        clock-creation order, a clock created before its stimulators would
        have ticked before the stimulus at the wake timestamp anyway, so
        this reproduces the always-tick schedule exactly.  No-op when the
        clock is running densely.
        """
        if not (self._sleeping or self._gated):
            return
        self._sleeping = False
        self._gated = False
        self._gate_cycle = 0
        if self._group is not None:
            self._group._wake(self.sim.now)
            return
        index = (self.sim.now - self._epoch) // self.period_ps + 1
        target = self.edge_time(index)
        if self._gating:
            if self._next_edge_time != -1 and self._next_edge_time <= target:
                # The pending edge already fires at or before the boundary
                # the stimulus needs; pulling it forward would
                # double-schedule.
                return
            self._next_edge_time = target
        self.sim._push(target, self._tick_priority, self._edge)

    def _edge(self) -> None:
        now = self.sim.now
        if self._gating:
            if now != self._next_edge_time:
                return  # superseded by a wake that pulled the edge forward
            self._next_edge_time = -1
            self._gated = False
            # Derive the cycle index from time so TDMA slot alignment
            # survives skipped edges (an NI slot is `cycle % num_slots`).
            cycle = (now - self._epoch) // self.period_ps
            self._cycle = cycle
            self.edges_executed += 1
            if self._gates_standing:
                for component in self._components:
                    if component._gate_until > cycle:
                        continue
                    component.tick(cycle)
            else:
                for component in self._components:
                    component.tick(cycle)
        else:
            cycle = (now - self._epoch) // self.period_ps
            self._cycle = cycle
            self.edges_executed += 1
            for component in self._components:
                component.tick(cycle)
        if self._post_tick_components:
            self.sim._push(now, self._commit_priority, self._commit_edge)
        else:
            # No component commits anything: skip the commit event entirely.
            self._after_edge()

    def _commit_edge(self) -> None:
        cycle = self._cycle
        if self._gating and self._gates_standing:
            for component in self._post_tick_components:
                if component._gate_until > cycle:
                    continue
                component.post_tick(cycle)
        else:
            for component in self._post_tick_components:
                component.post_tick(cycle)
        self._after_edge()

    def _dense_window_active(self, cycle1: int) -> bool:
        """Inside a dense window with at least one component still busy.

        The scan (early-exit, the same test ungated idle-skip runs every
        edge) closes the window the moment everything reports idle, so
        quiescence — and the sleep transition tests and workloads rely
        on — is never delayed by the amortization.
        """
        if self._dense_recheck <= cycle1:
            return False
        for component in self._components:
            if not component.is_idle():
                return True
        self._dense_recheck = 0
        return False

    def _gate_horizon(self, cycle: int) -> int:
        """Min next-action horizon over all components after edge ``cycle``.

        Standing gates beyond ``cycle + 1`` are trusted without
        recomputation: the state a pure horizon was computed from can only
        change through the component's own tick (which expires the gate) or
        through a notify (which cancels it).  Components without a
        ``next_action_cycle`` override contribute ``cycle + 1`` while
        non-idle and nothing while idle — the idle-skip rules, per
        component.  A FAR_FUTURE result means every component is idle or
        FAR-gated: the clock can sleep.

        A component whose horizon just came back as exactly ``cycle + 1``
        gets a ``_gate_recheck`` window: for the next
        ``_DENSE_RECHECK_SPAN`` cycles it is assumed dense without another
        query.  This only under-gates (extra ticks are no-ops by the
        idle/horizon contract), and only the "nothing to skip" answer is
        cached — real gates expire into an immediate requery.
        """
        cycle1 = cycle + 1
        horizon = FAR_FUTURE
        standing = False
        for component in self._components:
            gate = component._gate_until
            if gate > cycle1:
                standing = True
                if gate < horizon:
                    horizon = gate
                continue
            if component._has_next_action:
                if component._gate_recheck > cycle1:
                    horizon = cycle1
                    continue
                gate = component.next_action_cycle(cycle)
                component._gate_until = gate
                if gate == cycle1:
                    component._gate_recheck = cycle1 + _DENSE_RECHECK_SPAN
                    horizon = cycle1
                else:
                    standing = True
                    if gate < horizon:
                        horizon = gate
            elif not component.is_idle():
                horizon = cycle1
        self._gates_standing = standing
        if horizon == cycle1:
            # The pass concluded "tick the next boundary anyway": open a
            # dense window so the callers skip the whole pass until it
            # expires.  Components with standing gates keep their tick
            # skips (the edge loop still honours ``_gate_until``); whole
            # edges only ever skip when *every* component gates, and that
            # state never opens a window — macro-stepping is not delayed.
            self._dense_recheck = cycle1 + _DENSE_RECHECK_SPAN
        return horizon

    def _after_edge(self) -> None:
        """Reschedule the next edge — or go to sleep if everything is idle.

        Runs after the commit phase so idleness and next-action horizons
        reflect post_tick state (e.g. a link that just staged a flit is not
        idle).
        """
        if self._gating:
            cycle = self._cycle
            cycle1 = cycle + 1
            if self._dense_window_active(cycle1):
                # Inside a dense window: the next edge is unconditional,
                # skip the horizon pass (see ``_gate_horizon``).
                self._gated = False
                time = self.edge_time(cycle1)
                self._next_edge_time = time
                self.sim._push(time, self._tick_priority, self._edge)
                return
            horizon = self._gate_horizon(cycle)
            if horizon >= FAR_FUTURE:
                # All idle or FAR-gated: sleep without scheduling anything
                # (a far-future heap event would never pop and only bloat
                # the queue).  notify_active restarts the clock.
                self._sleeping = True
                self.sleep_count += 1
                return
            self._gated = horizon > cycle + 1
            time = self.edge_time(horizon)
            self._next_edge_time = time
            self.sim._push(time, self._tick_priority, self._edge)
            return
        if self.idle_skip:
            for component in self._components:
                if not component.is_idle():
                    break
            else:
                self._sleeping = True
                self.sleep_count += 1
                return
        self.sim._push(self.edge_time(self._cycle + 1), self._tick_priority,
                       self._edge)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "sleeping" if self._sleeping else (
            "gated" if self._gated else "running")
        return f"Clock({self.name}, {self.frequency_mhz} MHz, {state})"


class ClockGroup:
    """Fused scheduling for clocks that share a period and phase.

    A system of N same-frequency port clocks pays N heap events (plus up to
    N commit events) per period even though every edge lands on the same
    timestamp.  A group fires **one** event per timestamp and ticks its
    members in sequence — in clock-creation order, which is why members must
    hold *contiguous* tick priorities: the group event runs at the first
    member's priority, so interleaving with any non-member clock on a shared
    timestamp is exactly the unfused order.  (:func:`fuse_clocks` enforces
    contiguity when forming groups.)

    Per-member semantics are preserved: each member keeps its own
    ``idle_skip`` / ``tick_gating`` flags, ``sleeping`` state,
    ``sleep_count`` and ``edges_executed`` telemetry; sleeping members are
    skipped inside the group event (their edges neither execute nor count,
    as when unfused), and gating members additionally skip edges their
    next-action horizon (``_gate_cycle``) lies beyond.  The group schedules
    its next event at the earliest awake member's horizon; any member's
    :meth:`Clock.wake` pulls it back to the next period boundary — the same
    boundary an unfused wake would have used.

    The one observable difference is telemetry-only: executed-event counts
    shrink (one event per timestamp instead of one per awake member), which
    is the point.  Workload-visible state is untouched — ticks and commits
    run in identical order at identical times.
    """

    def __init__(self, members: List[Clock]) -> None:
        if len(members) < 2:
            raise SimulationError("a clock group needs at least two members")
        first = members[0]
        for prev, member in zip(members, members[1:]):
            if member.sim is not first.sim:
                raise SimulationError("clock group members share a simulator")
            if (member.period_ps != first.period_ps
                    or member.phase_ps != first.phase_ps):
                raise SimulationError(
                    f"clock group members must share period and phase "
                    f"({member.name} vs {first.name})")
            if member._tick_priority != prev._tick_priority + 1:
                raise SimulationError(
                    f"clock group members must hold contiguous tick "
                    f"priorities ({prev.name} -> {member.name})")
            if member._started or member._group is not None:
                raise SimulationError(
                    f"clock {member.name} cannot join a group after start")
        if first._started or first._group is not None:
            raise SimulationError(
                f"clock {first.name} cannot join a group after start")
        self.sim = first.sim
        self.period_ps = first.period_ps
        self.members = list(members)
        self._tick_priority = first._tick_priority
        self._commit_priority = first._commit_priority
        self._epoch = 0
        self._started = False
        #: Time of the pending (scheduled, not yet fired) group edge, or -1.
        #: As with :attr:`Clock._next_edge_time`, superseded events stay in
        #: the heap and no-op on execution; only the event matching this
        #: exact time runs.
        self._next_scheduled = -1
        for member in members:
            member._group = self

    def start(self) -> None:
        """Start every member and schedule the first group edge.  Idempotent."""
        if self._started:
            return
        self._started = True
        epoch = max(self.sim.now, self.members[0].phase_ps)
        self._epoch = epoch
        for member in self.members:
            member._started = True
            member._epoch = epoch
            member._sleeping = False
        self._next_scheduled = epoch
        self.sim._push(epoch, self._tick_priority, self._edge)

    def _schedule(self, time: int) -> None:
        if self._next_scheduled != -1 and self._next_scheduled <= time:
            return
        self._next_scheduled = time
        self.sim._push(time, self._tick_priority, self._edge)

    def _wake(self, now: int) -> None:
        """Member wake: fire at the first boundary strictly after ``now``."""
        index = (now - self._epoch) // self.period_ps + 1
        self._schedule(self._epoch + index * self.period_ps)

    def _edge(self) -> None:
        now = self.sim.now
        if now != self._next_scheduled:
            return  # superseded by a wake that pulled the edge forward
        self._next_scheduled = -1
        cycle = (now - self._epoch) // self.period_ps
        commit = False
        for member in self.members:
            if member._sleeping or member._gate_cycle > cycle:
                continue
            member._cycle = cycle
            member._gated = False
            member.edges_executed += 1
            if member._gating and member._gates_standing:
                for component in member._components:
                    if component._gate_until > cycle:
                        continue
                    component.tick(cycle)
            else:
                for component in member._components:
                    component.tick(cycle)
            if member._post_tick_components:
                commit = True
        if commit:
            self.sim._push(now, self._commit_priority, self._commit_edge)
        else:
            self._after_edge(cycle)

    def _commit_edge(self) -> None:
        cycle = (self.sim.now - self._epoch) // self.period_ps
        for member in self.members:
            # ``_cycle == cycle`` marks the members that ticked this edge
            # (a member woken mid-timestamp by another's stimulus has not
            # ticked and must not commit).
            if member._cycle == cycle and member._post_tick_components:
                if member._gating and member._gates_standing:
                    for component in member._post_tick_components:
                        if component._gate_until > cycle:
                            continue
                        component.post_tick(cycle)
                else:
                    for component in member._post_tick_components:
                        component.post_tick(cycle)
        self._after_edge(cycle)

    def _after_edge(self, cycle: int) -> None:
        """Per-member horizon/idleness evaluation, then one reschedule."""
        cycle1 = cycle + 1
        group_horizon = FAR_FUTURE
        for member in self.members:
            if member._sleeping:
                continue
            if member._cycle != cycle and member._gate_cycle <= cycle:
                # Woken mid-timestamp without ticking: the next edge is
                # unconditional, exactly as an unfused wake schedules.
                if cycle1 < group_horizon:
                    group_horizon = cycle1
                continue
            if member._gate_cycle > cycle:
                # Standing member horizon (this edge skipped the member).
                if member._gate_cycle < group_horizon:
                    group_horizon = member._gate_cycle
                continue
            if member._gating:
                if member._dense_window_active(cycle1):
                    # Inside the member's dense window (see
                    # ``_gate_horizon``): next edge unconditional.
                    member._gate_cycle = cycle1
                    member._gated = False
                    group_horizon = cycle1
                    continue
                horizon = member._gate_horizon(cycle)
                if horizon >= FAR_FUTURE:
                    member._sleeping = True
                    member._gate_cycle = 0
                    member.sleep_count += 1
                    continue
                member._gate_cycle = horizon
                member._gated = horizon > cycle1
                if horizon < group_horizon:
                    group_horizon = horizon
                continue
            if member.idle_skip:
                for component in member._components:
                    if not component.is_idle():
                        break
                else:
                    member._sleeping = True
                    member.sleep_count += 1
                    continue
            if cycle1 < group_horizon:
                group_horizon = cycle1
        if group_horizon < FAR_FUTURE:
            self._schedule(self._epoch + group_horizon * self.period_ps)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        names = ", ".join(m.name for m in self.members)
        return f"ClockGroup({self.period_ps} ps: {names})"


def fuse_clocks(clocks: List[Clock]) -> List[ClockGroup]:
    """Partition ``clocks`` into fused :class:`ClockGroup` runs.

    Groups are maximal runs of not-yet-started clocks with equal period and
    phase holding contiguous tick priorities (creation order with no other
    clock in between — a gap would let a non-member's edge interleave, so
    the run splits there).  Runs of one stay unfused.  Clocks already
    started or already grouped are left alone.  Always-tick clocks
    (``idle_skip=False``) never fuse: that mode reproduces the seed
    engine's event schedule, which benchmarks use as the event-count
    denominator.  Returns the groups formed.
    """
    groups: List[ClockGroup] = []
    run: List[Clock] = []

    def flush() -> None:
        if len(run) >= 2:
            groups.append(ClockGroup(list(run)))
        del run[:]

    for clock in sorted(clocks, key=lambda c: c._tick_priority):
        if clock._started or clock._group is not None or not clock.idle_skip:
            flush()
            continue
        if run and (clock.sim is not run[-1].sim
                    or clock.period_ps != run[-1].period_ps
                    or clock.phase_ps != run[-1].phase_ps
                    or clock._tick_priority != run[-1]._tick_priority + 1):
            flush()
        run.append(clock)
    flush()
    return groups


def run_cycles(sim: Simulator, clock: Clock, cycles: int) -> None:
    """Run the simulator through exactly ``cycles`` further edge instants of
    ``clock``.

    The contract is time-based: the simulator runs (inclusively) up to the
    time of the ``cycles``-th next edge instant on the clock's period grid.
    An always-active clock therefore executes exactly ``cycles`` edges — a
    fresh clock ticks cycles ``0 .. cycles-1`` — and consecutive calls
    compose: two calls with ``cycles=n`` cover the same window as one call
    with ``cycles=2n``.  An idle-skipping clock may execute fewer edges, but
    time (and thus the cycle/slot grid) advances identically.
    """
    if cycles < 0:
        raise SimulationError(f"cannot run {cycles} cycles")
    if cycles == 0:
        return
    clock.start()
    if clock.cycle < 0 and sim.now <= clock.epoch_ps:
        # First edge (index 0) is still pending: it counts as one of the
        # requested instants.
        target_index = cycles - 1
    else:
        # Last instant at or before now has passed (executed or skipped);
        # count instants strictly after it.
        target_index = (sim.now - clock.epoch_ps) // clock.period_ps + cycles
    sim.run(until=clock.edge_time(target_index))
