"""Clock domains for the cycle model — activity-driven.

Every NI port may run at its own frequency (Section 4.1 of the paper: the
hardware FIFOs implement the clock-domain crossing).  A :class:`Clock` fires a
rising edge every ``period_ps`` picoseconds and calls ``tick(cycle)`` on each
registered :class:`ClockedComponent`, then ``post_tick(cycle)`` on every
component that implements it.  The two-phase tick keeps same-edge evaluation
order-insensitive: components read state and compute in ``tick`` and commit
externally visible updates in ``post_tick``.

Activity-driven scheduling
--------------------------

A cycle-accurate model that ticks every component every period spends almost
all of its wall time doing nothing when the network is idle.  Clocks therefore
stop rescheduling themselves when every registered component reports
:meth:`ClockedComponent.is_idle`, and resume on an explicit
:meth:`Clock.wake` — delivered through :meth:`ClockedComponent.notify_active`
by whatever injects new stimulus (a port accepting a message, a link carrying
a flit, a configuration register write).

The wake-up contract (see ``PERFORMANCE.md`` for the full protocol):

* ``is_idle()`` may return True only when ``tick``/``post_tick`` would be
  observable no-ops (no state change, no statistics) *and* the component can
  only become active again through a stimulus that calls ``notify_active()``.
  The conservative default is False (always active), which reproduces the
  seed's always-tick behaviour for components that have not opted in.
* A woken clock fires its next edge at the first period boundary *strictly
  after* the wake time.  Coincident edges of different clocks execute in
  clock-creation order (each clock owns a distinct tick priority), so a
  clock created before its stimulators — as the flit clock is, and as any
  clock receiving immediately visible cross-domain stimulus must be — had
  already run its edge at the stimulus timestamp and observed the
  pre-stimulus state; the first edge that can react is the next one.
* Cycle indices are derived from simulation time (``(now - epoch) // period``)
  so TDMA slot alignment is preserved across skipped edges.
* A link must be registered on the same clock as its sink: the link's
  non-idleness is what keeps the sink ticking until the flit is consumed.

Setting ``idle_skip=False`` on a clock (or globally via
:func:`set_default_idle_skip` / the :func:`always_tick` context manager)
restores the seed's unconditional rescheduling; benchmarks and the
determinism tests use this to compare both modes.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional

from repro.sim.engine import SimulationError, Simulator

#: Each clock's tick callbacks run at a distinct priority allocated in clock
#: creation order (see ``Simulator.next_clock_priority``), so coincident edges
#: of different clocks always execute earliest-created first — in both engine
#: modes.  post_tick commits run above this base on the same timestamp so all
#: ticks of a timestamp complete before any commit.
_POST_TICK_PRIORITY_BASE = 1 << 20

#: Module-wide default for ``Clock.idle_skip`` (benchmarks flip it to measure
#: the always-tick baseline).
_DEFAULT_IDLE_SKIP = True


def set_default_idle_skip(enabled: bool) -> bool:
    """Set the default ``idle_skip`` for newly created clocks.

    Returns the previous default so callers can restore it.
    """
    global _DEFAULT_IDLE_SKIP
    previous = _DEFAULT_IDLE_SKIP
    _DEFAULT_IDLE_SKIP = bool(enabled)
    return previous


@contextlib.contextmanager
def always_tick() -> Iterator[None]:
    """Context manager: clocks built inside it use seed (always-tick) mode."""
    previous = set_default_idle_skip(False)
    try:
        yield
    finally:
        set_default_idle_skip(previous)


class ClockedComponent:
    """Base class for anything driven by a :class:`Clock`.

    Subclasses override :meth:`tick` (compute phase) and optionally
    :meth:`post_tick` (commit phase).  Components that can be quiescent
    additionally override :meth:`is_idle` and arrange for every stimulus
    that can end the quiescence to call :meth:`notify_active`.
    """

    #: Back-reference set by :meth:`Clock.add_component`; gives the component
    #: a wake handle without threading the clock through every constructor.
    _clock: Optional["Clock"] = None

    def tick(self, cycle: int) -> None:  # pragma: no cover - interface default
        """Compute phase of the clock edge."""

    def post_tick(self, cycle: int) -> None:  # pragma: no cover - default
        """Commit phase of the clock edge."""

    def is_idle(self) -> bool:
        """True when ticking this component is an observable no-op.

        The default is False: components that have not implemented the
        activity protocol keep their clock running every cycle, exactly as
        the seed engine did.
        """
        return False

    def notify_active(self) -> None:
        """Wake this component's clock (no-op when unclocked or awake)."""
        # Inline the sleeping check: stimulus arrives on hot paths (every
        # word pushed, every flit sent) and the clock is usually awake.
        clock = self._clock
        if clock is not None and clock._sleeping:
            clock.wake()


class Clock:
    """A periodic clock that drives registered components.

    Parameters
    ----------
    sim:
        The simulator providing the event queue.
    frequency_mhz:
        Clock frequency.  The period is rounded to an integer number of
        picoseconds (500 MHz -> 2000 ps, as used by the Aethereal router).
    name:
        Human-readable name used in traces and error messages.
    phase_ps:
        Offset of the first rising edge.
    idle_skip:
        When True (the default, see :func:`set_default_idle_skip`) the clock
        stops self-rescheduling while every component is idle and resumes on
        :meth:`wake`.  When False the clock reschedules unconditionally.
    """

    def __init__(self, sim: Simulator, frequency_mhz: float, name: str = "clk",
                 phase_ps: int = 0, idle_skip: Optional[bool] = None) -> None:
        if frequency_mhz <= 0:
            raise SimulationError(f"clock {name}: frequency must be positive")
        self.sim = sim
        self.name = name
        self.frequency_mhz = float(frequency_mhz)
        self.period_ps = int(round(1e6 / frequency_mhz))
        if self.period_ps <= 0:
            raise SimulationError(f"clock {name}: period rounds to 0 ps")
        self.phase_ps = int(phase_ps)
        self.idle_skip = (_DEFAULT_IDLE_SKIP if idle_skip is None
                          else bool(idle_skip))
        #: Coincident edges of different clocks run earliest-created first;
        #: a clock receiving immediately visible cross-domain stimulus (the
        #: flit clock: credits, flushes, register writes) must therefore be
        #: created before the clocks that stimulate it — which the system
        #: builders do.  This makes the strictly-after wake-up exact.
        self._tick_priority = sim.next_clock_priority()
        self._commit_priority = _POST_TICK_PRIORITY_BASE + self._tick_priority
        self._cycle = -1
        self._components: List[ClockedComponent] = []
        self._post_tick_components: List[ClockedComponent] = []
        self._started = False
        self._epoch = 0
        self._sleeping = False
        #: Edges actually executed (telemetry for the perf harness).
        self.edges_executed = 0
        #: Number of times the clock went to sleep.
        self.sleep_count = 0

    # ---------------------------------------------------------------- wiring
    def add_component(self, component: ClockedComponent) -> None:
        """Register a component; tick order follows registration order."""
        self._components.append(component)
        component._clock = self
        if type(component).post_tick is not ClockedComponent.post_tick:
            self._post_tick_components.append(component)
        # A component added to a sleeping clock must get a chance to tick;
        # the next edge re-evaluates idleness and re-sleeps if warranted.
        if self._sleeping:
            self.wake()

    def remove_component(self, component: ClockedComponent) -> None:
        self._components.remove(component)
        if component in self._post_tick_components:
            self._post_tick_components.remove(component)
        if component._clock is self:
            component._clock = None

    @property
    def cycle(self) -> int:
        """Index of the most recent executed rising edge (-1 before the
        first edge).  With idle-skip, skipped edge instants do not appear
        here; indices stay aligned to the time grid regardless."""
        return self._cycle

    @property
    def epoch_ps(self) -> int:
        """Time of edge 0 (valid once the clock has started)."""
        return self._epoch

    @property
    def sleeping(self) -> bool:
        """True while the clock has stopped self-rescheduling."""
        return self._sleeping

    @property
    def bandwidth_gbit_s(self) -> float:
        """Raw bandwidth of a 32-bit link clocked by this clock, in Gbit/s."""
        return 32.0 * self.frequency_mhz / 1000.0

    def cycles_to_ps(self, cycles: int) -> int:
        return cycles * self.period_ps

    def ps_to_cycles(self, ps: int) -> int:
        return ps // self.period_ps

    def edge_time(self, index: int) -> int:
        """Absolute time of edge ``index`` (the clock must have started)."""
        return self._epoch + index * self.period_ps

    # --------------------------------------------------------------- running
    def start(self) -> None:
        """Schedule the first rising edge.  Idempotent."""
        if self._started:
            return
        self._started = True
        self._epoch = max(self.sim.now, self.phase_ps)
        self._sleeping = False
        self.sim.schedule_at(self._epoch, self._edge,
                             priority=self._tick_priority)

    def wake(self) -> None:
        """Resume an idle-skipped clock.

        The next edge fires at the first period boundary strictly after the
        current simulation time — the first edge that can observe the
        stimulus that triggered the wake.  Because coincident edges run in
        clock-creation order, a clock created before its stimulators would
        have ticked before the stimulus at the wake timestamp anyway, so
        this reproduces the always-tick schedule exactly.  No-op when the
        clock is not sleeping.
        """
        if not self._sleeping:
            return
        self._sleeping = False
        index = (self.sim.now - self._epoch) // self.period_ps + 1
        self.sim._push(self.edge_time(index), self._tick_priority, self._edge)

    def _edge(self) -> None:
        # Derive the cycle index from time so TDMA slot alignment survives
        # skipped edges (an NI slot is `cycle % num_slots`).
        cycle = (self.sim.now - self._epoch) // self.period_ps
        self._cycle = cycle
        self.edges_executed += 1
        for component in self._components:
            component.tick(cycle)
        if self._post_tick_components:
            self.sim._push(self.sim.now, self._commit_priority,
                           self._commit_edge)
        else:
            # No component commits anything: skip the commit event entirely.
            self._after_edge()

    def _commit_edge(self) -> None:
        cycle = self._cycle
        for component in self._post_tick_components:
            component.post_tick(cycle)
        self._after_edge()

    def _after_edge(self) -> None:
        """Reschedule the next edge — or go to sleep if everything is idle.

        Runs after the commit phase so idleness reflects post_tick state
        (e.g. a link that just staged a flit is not idle).
        """
        if self.idle_skip:
            for component in self._components:
                if not component.is_idle():
                    break
            else:
                self._sleeping = True
                self.sleep_count += 1
                return
        self.sim._push(self.edge_time(self._cycle + 1), self._tick_priority,
                       self._edge)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "sleeping" if self._sleeping else "running"
        return f"Clock({self.name}, {self.frequency_mhz} MHz, {state})"


def run_cycles(sim: Simulator, clock: Clock, cycles: int) -> None:
    """Run the simulator through exactly ``cycles`` further edge instants of
    ``clock``.

    The contract is time-based: the simulator runs (inclusively) up to the
    time of the ``cycles``-th next edge instant on the clock's period grid.
    An always-active clock therefore executes exactly ``cycles`` edges — a
    fresh clock ticks cycles ``0 .. cycles-1`` — and consecutive calls
    compose: two calls with ``cycles=n`` cover the same window as one call
    with ``cycles=2n``.  An idle-skipping clock may execute fewer edges, but
    time (and thus the cycle/slot grid) advances identically.
    """
    if cycles < 0:
        raise SimulationError(f"cannot run {cycles} cycles")
    if cycles == 0:
        return
    clock.start()
    if clock.cycle < 0 and sim.now <= clock.epoch_ps:
        # First edge (index 0) is still pending: it counts as one of the
        # requested instants.
        target_index = cycles - 1
    else:
        # Last instant at or before now has passed (executed or skipped);
        # count instants strictly after it.
        target_index = (sim.now - clock.epoch_ps) // clock.period_ps + cycles
    sim.run(until=clock.edge_time(target_index))
