"""Clock domains for the cycle model.

Every NI port may run at its own frequency (Section 4.1 of the paper: the
hardware FIFOs implement the clock-domain crossing).  A :class:`Clock` fires a
rising edge every ``period_ps`` picoseconds and calls ``tick(cycle)`` on each
registered :class:`ClockedComponent`, then ``post_tick(cycle)`` on every
component that implements it.  The two-phase tick keeps same-edge evaluation
order-insensitive: components read state and compute in ``tick`` and commit
externally visible updates in ``post_tick``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.engine import SimulationError, Simulator

#: Priority used for tick callbacks; post_tick runs at a later priority on the
#: same timestamp so all ticks of a timestamp complete before any commit.
_TICK_PRIORITY = 0
_POST_TICK_PRIORITY = 10


class ClockedComponent:
    """Base class for anything driven by a :class:`Clock`.

    Subclasses override :meth:`tick` (compute phase) and optionally
    :meth:`post_tick` (commit phase).
    """

    def tick(self, cycle: int) -> None:  # pragma: no cover - interface default
        """Compute phase of the clock edge."""

    def post_tick(self, cycle: int) -> None:  # pragma: no cover - default
        """Commit phase of the clock edge."""


class Clock:
    """A periodic clock that drives registered components.

    Parameters
    ----------
    sim:
        The simulator providing the event queue.
    frequency_mhz:
        Clock frequency.  The period is rounded to an integer number of
        picoseconds (500 MHz -> 2000 ps, as used by the Aethereal router).
    name:
        Human-readable name used in traces and error messages.
    phase_ps:
        Offset of the first rising edge.
    """

    def __init__(self, sim: Simulator, frequency_mhz: float, name: str = "clk",
                 phase_ps: int = 0) -> None:
        if frequency_mhz <= 0:
            raise SimulationError(f"clock {name}: frequency must be positive")
        self.sim = sim
        self.name = name
        self.frequency_mhz = float(frequency_mhz)
        self.period_ps = int(round(1e6 / frequency_mhz))
        if self.period_ps <= 0:
            raise SimulationError(f"clock {name}: period rounds to 0 ps")
        self.phase_ps = int(phase_ps)
        self._cycle = -1
        self._components: List[ClockedComponent] = []
        self._started = False

    # ---------------------------------------------------------------- wiring
    def add_component(self, component: ClockedComponent) -> None:
        """Register a component; tick order follows registration order."""
        self._components.append(component)

    def remove_component(self, component: ClockedComponent) -> None:
        self._components.remove(component)

    @property
    def cycle(self) -> int:
        """Index of the most recent rising edge (-1 before the first edge)."""
        return self._cycle

    @property
    def bandwidth_gbit_s(self) -> float:
        """Raw bandwidth of a 32-bit link clocked by this clock, in Gbit/s."""
        return 32.0 * self.frequency_mhz / 1000.0

    def cycles_to_ps(self, cycles: int) -> int:
        return cycles * self.period_ps

    def ps_to_cycles(self, ps: int) -> int:
        return ps // self.period_ps

    # --------------------------------------------------------------- running
    def start(self) -> None:
        """Schedule the first rising edge.  Idempotent."""
        if self._started:
            return
        self._started = True
        first = max(self.sim.now, self.phase_ps)
        self.sim.schedule_at(first, self._edge, priority=_TICK_PRIORITY)

    def _edge(self) -> None:
        self._cycle += 1
        cycle = self._cycle
        for component in list(self._components):
            component.tick(cycle)
        self.sim.schedule_at(self.sim.now, self._commit_edge,
                             priority=_POST_TICK_PRIORITY)
        self.sim.schedule(self.period_ps, self._edge, priority=_TICK_PRIORITY)

    def _commit_edge(self) -> None:
        cycle = self._cycle
        for component in list(self._components):
            component.post_tick(cycle)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Clock({self.name}, {self.frequency_mhz} MHz)"


def run_cycles(sim: Simulator, clock: Clock, cycles: int) -> None:
    """Convenience: run the simulator for ``cycles`` edges of ``clock``."""
    clock.start()
    target_cycle = clock.cycle + cycles
    end_time: Optional[int] = sim.now + cycles * clock.period_ps
    sim.run(until=end_time)
    # The final edge may land exactly at end_time; nothing further needed.
    del target_cycle
