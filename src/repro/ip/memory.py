"""A simple word-addressed shared memory.

Used as the backing store of :class:`repro.ip.slave.MemorySlave`; the
narrowcast example maps one shared address space over several of these.
"""

from __future__ import annotations

from typing import Dict, List


class MemoryRangeError(ValueError):
    """Raised on out-of-range accesses of a bounded memory."""


class SharedMemory:
    """A sparse word-addressed memory with an optional size bound."""

    def __init__(self, size_words: int = 0, fill: int = 0) -> None:
        if size_words < 0:
            raise MemoryRangeError("memory size cannot be negative")
        self.size_words = size_words
        self.fill = fill & 0xFFFFFFFF
        self._data: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    def _check(self, address: int) -> None:
        if address < 0:
            raise MemoryRangeError(f"negative address 0x{address:x}")
        if self.size_words and address >= self.size_words:
            raise MemoryRangeError(
                f"address 0x{address:x} outside memory of {self.size_words} words")

    def read(self, address: int) -> int:
        self._check(address)
        self.reads += 1
        return self._data.get(address, self.fill)

    def write(self, address: int, value: int) -> None:
        self._check(address)
        self.writes += 1
        self._data[address] = value & 0xFFFFFFFF

    def read_burst(self, address: int, length: int) -> List[int]:
        return [self.read(address + i) for i in range(length)]

    def write_burst(self, address: int, data: List[int]) -> None:
        for offset, word in enumerate(data):
            self.write(address + offset, word)

    def __len__(self) -> int:
        return len(self._data)
