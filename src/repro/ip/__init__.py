"""IP-module models: traffic-generating masters and memory/register slaves.

These stand in for the hardware and software IP cores a real SoC would attach
to the Aethereal NoC (video pixel processing chains, DSPs, memories).  They
talk to the NI exclusively through the shells' transaction interfaces, which
is exactly the decoupling of computation from communication the paper argues
for.
"""

from repro.ip.master import TrafficGeneratorMaster
from repro.ip.memory import SharedMemory
from repro.ip.slave import MemorySlave, RegisterSlave, SlaveIP
from repro.ip.traffic import (
    BurstyTraffic,
    ConstantBitRateTraffic,
    RandomTraffic,
    TrafficPattern,
    VideoLineTraffic,
)

__all__ = [
    "BurstyTraffic",
    "ConstantBitRateTraffic",
    "MemorySlave",
    "RandomTraffic",
    "RegisterSlave",
    "SharedMemory",
    "SlaveIP",
    "TrafficGeneratorMaster",
    "TrafficPattern",
    "VideoLineTraffic",
]
