"""Traffic-generating master IP module.

A :class:`TrafficGeneratorMaster` drives a master shell with the transaction
stream of a :class:`~repro.ip.traffic.TrafficPattern`, records per-transaction
latency, and counts delivered words — the measurements experiments E2, E4,
E5, E8 and E10 are built on.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.core.shells.master import MasterShell
from repro.ip.traffic import TrafficPattern
from repro.protocol.transactions import Transaction, TransactionStatus
from repro.sim.batching import FAR_FUTURE
from repro.sim.clock import ClockedComponent
from repro.sim.stats import StatsRegistry


class TrafficGeneratorMaster(ClockedComponent):
    """A master IP that replays a traffic pattern into a master shell."""

    def __init__(self, name: str, shell: MasterShell,
                 pattern: Optional[TrafficPattern] = None,
                 max_transactions: Optional[int] = None,
                 stop_cycle: Optional[int] = None) -> None:
        self.name = name
        self.shell = shell
        self.pattern = pattern
        self.max_transactions = max_transactions
        self.stop_cycle = stop_cycle
        self.stats = StatsRegistry()
        self.completed: List[Transaction] = []
        self._backlog: Deque[Transaction] = deque()
        # Un-gate this IP the moment the shell below appends a completion
        # (tick gating: a standing gate is only cancelled by a notify).
        shell.on_complete = self.notify_active
        self._generated = 0
        self._cycle = 0
        #: Pattern fast path: cycles strictly below this are guaranteed
        #: traffic-free (see ``TrafficPattern.next_active_cycle``), so
        #: ``_generate`` skips the pattern call entirely.
        self._next_active = 0
        # Hot-path counters cached as attributes (one registry lookup at
        # construction, not one per tick); still visible through ``stats``.
        self._ctr_generated = self.stats.counter("transactions_generated")
        self._ctr_issued = self.stats.counter("transactions_issued")
        self._ctr_completed = self.stats.counter("transactions_completed")
        self._ctr_errors = self.stats.counter("transaction_errors")
        self._ctr_words_completed = self.stats.counter("words_completed")
        self._lat = self.stats.latency("latency")

    # -------------------------------------------------------------- control
    def issue(self, transaction: Transaction) -> None:
        """Explicitly queue one transaction (in addition to the pattern)."""
        self._backlog.append(transaction)
        self.notify_active()

    def issue_many(self, transactions: List[Transaction]) -> None:
        for transaction in transactions:
            self.issue(transaction)

    def done(self) -> bool:
        """True when every generated transaction has completed *and* been
        collected into :attr:`completed` (the shell completes a posted write
        one tick before this IP polls it, so the uncollected count matters)."""
        return (not self._backlog and self.shell.outstanding == 0
                and self.shell.uncollected_completions == 0
                and self._pattern_exhausted())

    def _pattern_exhausted(self) -> bool:
        if self.pattern is None:
            return True
        if self.max_transactions is not None:
            return self._generated >= self.max_transactions
        if self.stop_cycle is not None:
            return self._cycle >= self.stop_cycle
        return False

    # ----------------------------------------------------------------- clock
    def tick(self, cycle: int) -> None:
        self._cycle = cycle
        if cycle >= self._next_active:
            self._generate(cycle)
        if self._backlog:
            self._submit(cycle)
        if self.shell.uncollected_completions:
            self._collect(cycle)

    def is_idle(self) -> bool:
        """Activity predicate for idle-skip.

        Busy while the traffic pattern can still generate transactions (the
        pattern is cycle-indexed, so the generator must observe every cycle
        until it is exhausted) or explicitly issued transactions await
        submission.  Completions are collected while the shells below keep
        the shared clock awake.
        """
        return not self._backlog and self._pattern_exhausted()

    def next_action_cycle(self, cycle: int) -> int:
        """Horizon: the pattern's next active cycle once nothing is queued.

        Dense while transactions await submission or collection; otherwise
        the generator sleeps until ``_next_active`` (the pattern's own
        guaranteed-traffic-free fast path, so skipping to it is exact).
        With a ``stop_cycle`` pattern the horizon is clamped to the stop
        cycle: ``_pattern_exhausted`` reads the *recorded* ``_cycle``, so
        one tick at the stop cycle is required before the FAR claim —
        otherwise ``done()`` and ``is_idle`` would report unexhausted off a
        stale cycle forever.
        """
        if self._backlog or self.shell.uncollected_completions:
            return cycle + 1
        pattern = self.pattern
        if pattern is None:
            return FAR_FUTURE
        if self.max_transactions is not None:
            if self._generated >= self.max_transactions:
                return FAR_FUTURE
        elif self.stop_cycle is not None and self._cycle >= self.stop_cycle:
            return FAR_FUTURE
        nxt = self._next_active
        if self.stop_cycle is not None and nxt > self.stop_cycle:
            nxt = self.stop_cycle
        if nxt <= cycle:
            return cycle + 1
        return nxt

    def _generate(self, cycle: int) -> None:
        pattern = self.pattern
        if pattern is None:
            return
        if self.stop_cycle is not None and cycle >= self.stop_cycle:
            return
        if (self.max_transactions is not None
                and self._generated >= self.max_transactions):
            return
        for transaction in pattern.transactions_for_cycle(cycle):
            if (self.max_transactions is not None
                    and self._generated >= self.max_transactions):
                break
            self._backlog.append(transaction)
            self._generated += 1
            self._ctr_generated.increment()
        self._next_active = pattern.next_active_cycle(cycle + 1)

    def _submit(self, cycle: int) -> None:
        while self._backlog and self.shell.can_submit():
            transaction = self._backlog.popleft()
            if not self.shell.submit(transaction, cycle=cycle):
                self._backlog.appendleft(transaction)
                return
            self._ctr_issued.increment()

    def _collect(self, cycle: int) -> None:
        for transaction in self.shell.poll_completed():
            self.completed.append(transaction)
            self._ctr_completed.increment()
            if transaction.status == TransactionStatus.ERROR:
                self._ctr_errors.increment()
            if transaction.latency_cycles is not None:
                self._lat.record(transaction.issue_cycle,
                                 transaction.complete_cycle)
            self._ctr_words_completed.increment(transaction.burst_length)

    # ------------------------------------------------------------ reporting
    @property
    def backlog(self) -> int:
        return len(self._backlog)

    def latency_summary(self) -> dict:
        recorder = self.stats.latency("latency")
        return {
            "count": recorder.count,
            "min": recorder.minimum,
            "mean": recorder.mean,
            "max": recorder.maximum,
            "jitter": recorder.jitter,
        }
