"""Traffic patterns for the master IP models.

The paper motivates the NI with video pixel processing chains and mixed
guaranteed/best-effort system traffic; these generators produce the
corresponding transaction streams:

* :class:`ConstantBitRateTraffic` — a write or read burst every fixed period
  (the streaming traffic GT connections are designed for);
* :class:`BurstyTraffic` — on/off bursts (control traffic, cache refills);
* :class:`RandomTraffic` — memoryless transaction arrivals from a seeded
  generator (deterministic across runs);
* :class:`VideoLineTraffic` — line-structured traffic: a burst of pixel words
  per video line with a line-blanking gap.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.protocol.transactions import Transaction

#: Shared empty result for cycles with no traffic: the generators return it
#: instead of allocating a fresh list every master-clock cycle (hot path);
#: callers only iterate the result.
NO_TRAFFIC: List[Transaction] = []


class TrafficPattern:
    """Interface: transactions to issue at a given master-clock cycle."""

    def transactions_for_cycle(self, cycle: int) -> List[Transaction]:
        raise NotImplementedError

    def expected_words_per_cycle(self) -> float:
        """Average payload words per cycle (used for slot budgeting)."""
        raise NotImplementedError

    def next_active_cycle(self, cycle: int) -> int:
        """First cycle >= ``cycle`` that may produce traffic.

        A scheduling *hint* for the master's fast path: cycles strictly
        before the returned value are guaranteed to yield ``NO_TRAFFIC``,
        so the generator skips the per-cycle pattern call.  The default —
        correct for any pattern — is ``cycle`` itself (no skipping).
        Patterns whose ``transactions_for_cycle`` has per-cycle side
        effects (e.g. drawing from an RNG) must keep the default.
        """
        return cycle


class ConstantBitRateTraffic(TrafficPattern):
    """A fixed-size transaction every ``period_cycles`` cycles."""

    def __init__(self, period_cycles: int, burst_words: int = 4,
                 write: bool = True, posted: bool = False,
                 base_address: int = 0x0, address_stride: int = 4,
                 address_wrap: int = 1 << 20,
                 start_cycle: int = 0) -> None:
        if period_cycles <= 0:
            raise ValueError("period must be positive")
        if burst_words <= 0:
            raise ValueError("burst must move at least one word")
        self.period_cycles = period_cycles
        self.burst_words = burst_words
        self.write = write
        self.posted = posted
        self.base_address = base_address
        self.address_stride = address_stride
        self.address_wrap = address_wrap
        self.start_cycle = start_cycle
        self._issued = 0

    def transactions_for_cycle(self, cycle: int) -> List[Transaction]:
        if cycle < self.start_cycle:
            return NO_TRAFFIC
        if (cycle - self.start_cycle) % self.period_cycles != 0:
            return NO_TRAFFIC
        offset = (self._issued * self.address_stride) % self.address_wrap
        address = self.base_address + offset
        self._issued += 1
        if self.write:
            data = [(cycle + i) & 0xFFFFFFFF for i in range(self.burst_words)]
            return [Transaction.write(address, data, posted=self.posted)]
        return [Transaction.read(address, length=self.burst_words)]

    def expected_words_per_cycle(self) -> float:
        return self.burst_words / self.period_cycles

    def next_active_cycle(self, cycle: int) -> int:
        if cycle <= self.start_cycle:
            return self.start_cycle
        remainder = (cycle - self.start_cycle) % self.period_cycles
        return cycle if remainder == 0 else cycle + self.period_cycles - remainder


class BurstyTraffic(TrafficPattern):
    """On/off traffic: ``burst_transactions`` back to back, then silence."""

    def __init__(self, on_cycles: int, off_cycles: int, burst_words: int = 4,
                 write: bool = True, base_address: int = 0x0,
                 posted: bool = False) -> None:
        if on_cycles <= 0 or off_cycles < 0:
            raise ValueError("invalid burst shape")
        self.on_cycles = on_cycles
        self.off_cycles = off_cycles
        self.burst_words = burst_words
        self.write = write
        self.posted = posted
        self.base_address = base_address
        self._issued = 0

    def transactions_for_cycle(self, cycle: int) -> List[Transaction]:
        phase = cycle % (self.on_cycles + self.off_cycles)
        if phase >= self.on_cycles:
            return NO_TRAFFIC
        address = self.base_address + (self._issued * 4) % (1 << 16)
        self._issued += 1
        if self.write:
            data = [cycle & 0xFFFFFFFF] * self.burst_words
            return [Transaction.write(address, data, posted=self.posted)]
        return [Transaction.read(address, length=self.burst_words)]

    def expected_words_per_cycle(self) -> float:
        duty = self.on_cycles / (self.on_cycles + self.off_cycles)
        return duty * self.burst_words

    def next_active_cycle(self, cycle: int) -> int:
        period = self.on_cycles + self.off_cycles
        phase = cycle % period
        return cycle if phase < self.on_cycles else cycle + period - phase


class RandomTraffic(TrafficPattern):
    """Memoryless arrivals with a seeded random generator (deterministic)."""

    def __init__(self, injection_probability: float, burst_words: int = 4,
                 read_fraction: float = 0.5, base_address: int = 0x0,
                 address_space: int = 1 << 16, seed: int = 1) -> None:
        if not 0.0 <= injection_probability <= 1.0:
            raise ValueError("injection probability must be in [0, 1]")
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read fraction must be in [0, 1]")
        self.injection_probability = injection_probability
        self.burst_words = burst_words
        self.read_fraction = read_fraction
        self.base_address = base_address
        self.address_space = address_space
        self._rng = random.Random(seed)

    def transactions_for_cycle(self, cycle: int) -> List[Transaction]:
        if self._rng.random() >= self.injection_probability:
            return NO_TRAFFIC
        address = self.base_address + 4 * self._rng.randrange(
            max(1, self.address_space // 4))
        if self._rng.random() < self.read_fraction:
            return [Transaction.read(address, length=self.burst_words)]
        data = [self._rng.getrandbits(32) for _ in range(self.burst_words)]
        return [Transaction.write(address, data)]

    def expected_words_per_cycle(self) -> float:
        return self.injection_probability * self.burst_words


class VideoLineTraffic(TrafficPattern):
    """Line-structured pixel traffic (the paper's video processing use case).

    Each video line consists of ``pixels_per_line`` words written in bursts of
    ``burst_words``; between lines the generator is silent for
    ``blanking_cycles`` cycles.
    """

    def __init__(self, pixels_per_line: int = 64, burst_words: int = 8,
                 cycles_per_burst: int = 16, blanking_cycles: int = 32,
                 base_address: int = 0x0, posted: bool = True) -> None:
        if pixels_per_line <= 0 or burst_words <= 0 or cycles_per_burst <= 0:
            raise ValueError("invalid video line shape")
        self.pixels_per_line = pixels_per_line
        self.burst_words = burst_words
        self.cycles_per_burst = cycles_per_burst
        self.blanking_cycles = blanking_cycles
        self.base_address = base_address
        self.posted = posted
        self.bursts_per_line = -(-pixels_per_line // burst_words)
        self.line_cycles = (self.bursts_per_line * cycles_per_burst
                            + blanking_cycles)
        self._line = 0

    def transactions_for_cycle(self, cycle: int) -> List[Transaction]:
        phase = cycle % self.line_cycles
        active_cycles = self.bursts_per_line * self.cycles_per_burst
        if phase >= active_cycles or phase % self.cycles_per_burst != 0:
            if phase == self.line_cycles - 1:
                self._line += 1
            return NO_TRAFFIC
        burst_index = phase // self.cycles_per_burst
        words_left = self.pixels_per_line - burst_index * self.burst_words
        words = min(self.burst_words, words_left)
        line = cycle // self.line_cycles
        address = (self.base_address
                   + 4 * (line * self.pixels_per_line
                          + burst_index * self.burst_words))
        data = [((line & 0xFFFF) << 16 | i) for i in range(words)]
        return [Transaction.write(address, data, posted=self.posted)]

    def expected_words_per_cycle(self) -> float:
        return self.pixels_per_line / self.line_cycles


def merge_patterns(patterns: List[TrafficPattern], cycle: int) -> Iterator[Transaction]:
    """Chain the transactions of several patterns for one cycle."""
    for pattern in patterns:
        for transaction in pattern.transactions_for_cycle(cycle):
            yield transaction
