"""Slave IP modules.

A slave IP sits behind a slave shell and executes transactions.  The
interface is deliberately small so the configuration slave (CNIP), memories
and custom test doubles all fit it:

* ``enqueue(transaction)`` — accept a transaction for execution;
* ``pop_response() -> (transaction, response) | None`` — completed work, in
  the order it was enqueued.

:class:`MemorySlave` adds a configurable execution latency so experiments can
model slow memories; :class:`RegisterSlave` is a tiny bounded register bank
that reports decode errors for out-of-range addresses.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.ip.memory import MemoryRangeError, SharedMemory
from repro.protocol.transactions import (
    ResponseError,
    Transaction,
    TransactionResponse,
)
from repro.sim.batching import FAR_FUTURE
from repro.sim.clock import ClockedComponent
from repro.sim.stats import StatsRegistry


class SlaveIP(ClockedComponent):
    """Base class / interface for slave IP modules."""

    def enqueue(self, transaction: Transaction) -> None:
        raise NotImplementedError

    def pop_response(self) -> Optional[Tuple[Transaction, TransactionResponse]]:
        raise NotImplementedError


def execute_on_memory(memory: SharedMemory, stats: StatsRegistry,
                      transaction: Transaction) -> TransactionResponse:
    """Execute one transaction on a shared-memory store, counting into
    ``stats`` (``reads`` / ``writes`` / ``errors``).

    The single definition of memory-transaction semantics: both the ideal
    :class:`MemorySlave` and the DRAM backend
    (:class:`repro.mem.slave.DRAMBackedSlave`) execute through it, so error
    handling can never diverge between the backends behind the same shell.
    """
    try:
        if transaction.is_read:
            data = memory.read_burst(transaction.address,
                                     transaction.read_length)
            stats.counter("reads").increment()
            return TransactionResponse(read_data=data)
        memory.write_burst(transaction.address, transaction.write_data)
        stats.counter("writes").increment()
        return TransactionResponse()
    except MemoryRangeError:
        stats.counter("errors").increment()
        return TransactionResponse(error=ResponseError.DECODE_ERROR)


class MemorySlave(SlaveIP):
    """A memory-backed slave with a fixed execution latency in IP cycles."""

    def __init__(self, name: str, memory: Optional[SharedMemory] = None,
                 latency_cycles: int = 1,
                 transactions_per_cycle: int = 1) -> None:
        if latency_cycles < 0:
            raise ValueError("latency cannot be negative")
        if transactions_per_cycle <= 0:
            raise ValueError("need at least one transaction per cycle")
        self.name = name
        self.memory = memory if memory is not None else SharedMemory()
        self.latency_cycles = latency_cycles
        self.transactions_per_cycle = transactions_per_cycle
        self.stats = StatsRegistry()
        self._pending: Deque[Tuple[int, Transaction]] = deque()
        self._done: Deque[Tuple[Transaction, TransactionResponse]] = deque()
        self._cycle = 0
        self._enqueued = 0

    # ------------------------------------------------------------ interface
    def enqueue(self, transaction: Transaction) -> None:
        ready = self._cycle + self.latency_cycles
        self._pending.append((ready, transaction))
        self._enqueued += 1
        self.notify_active()

    def pop_response(self) -> Optional[Tuple[Transaction, TransactionResponse]]:
        if self._done:
            return self._done.popleft()
        return None

    def idle(self) -> bool:
        return not self._pending and not self._done

    def is_idle(self) -> bool:
        """Activity predicate for idle-skip: nothing queued, nothing to drain."""
        return not self._pending and not self._done

    # ----------------------------------------------------------------- clock
    # Deliberately no ``next_action_cycle`` override: ``enqueue`` computes
    # each transaction's ready cycle from ``self._cycle``, the cycle of the
    # *last executed tick*.  Gating this component's ticks while its shell
    # keeps running would change that staleness and hence the ready stamps,
    # so it must keep the non-overrider contract (tick on every executed
    # edge while non-idle).
    def tick(self, cycle: int) -> None:
        self._cycle = cycle
        executed = 0
        while (self._pending and self._pending[0][0] <= cycle
               and executed < self.transactions_per_cycle):
            _, transaction = self._pending.popleft()
            response = self._execute(transaction)
            self._done.append((transaction, response))
            executed += 1

    # --------------------------------------------------------------- execute
    def _execute(self, transaction: Transaction) -> TransactionResponse:
        return execute_on_memory(self.memory, self.stats, transaction)


class RegisterSlave(SlaveIP):
    """A small register bank executing transactions immediately."""

    def __init__(self, name: str, num_registers: int = 16) -> None:
        if num_registers <= 0:
            raise ValueError("need at least one register")
        self.name = name
        self.registers = [0] * num_registers
        self._done: Deque[Tuple[Transaction, TransactionResponse]] = deque()
        self.stats = StatsRegistry()

    def enqueue(self, transaction: Transaction) -> None:
        self._done.append((transaction, self._execute(transaction)))
        self.notify_active()

    def pop_response(self) -> Optional[Tuple[Transaction, TransactionResponse]]:
        if self._done:
            return self._done.popleft()
        return None

    def idle(self) -> bool:
        return not self._done

    def is_idle(self) -> bool:
        """Activity predicate for idle-skip: no responses awaiting drainage."""
        return not self._done

    def next_action_cycle(self, cycle: int) -> int:
        # Unclocked immediate executor: ``enqueue`` does all the work and the
        # inherited tick is a no-op, so no future tick can change state; the
        # slave shell drains ``_done`` while this slave reports non-idle.
        return FAR_FUTURE

    def _execute(self, transaction: Transaction) -> TransactionResponse:
        top = transaction.address + max(transaction.read_length,
                                        len(transaction.write_data))
        if transaction.address < 0 or top > len(self.registers):
            self.stats.counter("errors").increment()
            return TransactionResponse(error=ResponseError.DECODE_ERROR)
        if transaction.is_read:
            data = self.registers[transaction.address:
                                  transaction.address + transaction.read_length]
            self.stats.counter("reads").increment()
            return TransactionResponse(read_data=list(data))
        for offset, word in enumerate(transaction.write_data):
            self.registers[transaction.address + offset] = word & 0xFFFFFFFF
        self.stats.counter("writes").increment()
        return TransactionResponse()
