"""Simplified AXI protocol adapter.

AXI splits a transaction over five channels: write address (AW), write data
(W), write response (B), read address (AR) and read data (R).  The paper's
master/slave shells sequentialize exactly these signal groups into request and
response messages (Section 2: "commands, and write data (corresponding to the
address and write signal groups in AXI)").  This module models the five
channel payloads and converts them to and from the generic transaction model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Optional

from repro.protocol.transactions import (
    Command,
    ResponseError,
    Transaction,
    TransactionResponse,
)


class AxiResp(IntEnum):
    """AXI response codes."""

    OKAY = 0
    EXOKAY = 1
    SLVERR = 2
    DECERR = 3


@dataclass
class AxiAW:
    """Write-address channel beat."""

    addr: int
    length: int = 1          # burst length in beats
    axi_id: int = 0


@dataclass
class AxiW:
    """Write-data channel beat."""

    data: int
    strb: int = 0xF
    last: bool = False


@dataclass
class AxiB:
    """Write-response channel beat."""

    resp: AxiResp = AxiResp.OKAY
    axi_id: int = 0


@dataclass
class AxiAR:
    """Read-address channel beat."""

    addr: int
    length: int = 1
    axi_id: int = 0


@dataclass
class AxiR:
    """Read-data channel beat."""

    data: int
    resp: AxiResp = AxiResp.OKAY
    last: bool = False
    axi_id: int = 0


@dataclass
class AxiWriteBurst:
    """A complete AXI write: one AW beat plus its W beats."""

    aw: AxiAW
    w_beats: List[AxiW] = field(default_factory=list)


def axi_write_to_transaction(burst: AxiWriteBurst) -> Transaction:
    if not burst.w_beats:
        raise ValueError("AXI write burst has no W beats")
    if len(burst.w_beats) != burst.aw.length:
        raise ValueError(
            f"AW.length={burst.aw.length} does not match {len(burst.w_beats)} W beats")
    if not burst.w_beats[-1].last:
        raise ValueError("last W beat must assert WLAST")
    data = [beat.data for beat in burst.w_beats]
    return Transaction(command=Command.WRITE, address=burst.aw.addr,
                       write_data=data)


def axi_read_to_transaction(ar: AxiAR) -> Transaction:
    return Transaction(command=Command.READ, address=ar.addr,
                       read_length=ar.length)


def _resp_from_error(error: ResponseError) -> AxiResp:
    if error == ResponseError.OK:
        return AxiResp.OKAY
    if error == ResponseError.DECODE_ERROR:
        return AxiResp.DECERR
    return AxiResp.SLVERR


def response_to_axi_b(response: TransactionResponse, axi_id: int = 0) -> AxiB:
    return AxiB(resp=_resp_from_error(response.error), axi_id=axi_id)


def response_to_axi_r(response: TransactionResponse,
                      axi_id: int = 0) -> List[AxiR]:
    beats = [AxiR(data=word, resp=_resp_from_error(response.error),
                  last=False, axi_id=axi_id)
             for word in response.read_data]
    if beats:
        beats[-1].last = True
    return beats


def axi_r_to_response(beats: List[AxiR]) -> TransactionResponse:
    if not beats:
        raise ValueError("empty AXI read response")
    error = ResponseError.OK
    if any(beat.resp != AxiResp.OKAY for beat in beats):
        error = ResponseError.SLAVE_ERROR
    return TransactionResponse(error=error, read_data=[b.data for b in beats])


def axi_b_to_response(beat: AxiB) -> TransactionResponse:
    error = ResponseError.OK if beat.resp == AxiResp.OKAY else ResponseError.SLAVE_ERROR
    return TransactionResponse(error=error)


def transaction_to_axi(transaction: Transaction):
    """Reconstruct the AXI request beats a transaction corresponds to."""
    if transaction.is_read:
        return AxiAR(addr=transaction.address, length=transaction.read_length)
    beats = [AxiW(data=word, last=False) for word in transaction.write_data]
    if beats:
        beats[-1].last = True
    aw = AxiAW(addr=transaction.address, length=len(beats))
    return AxiWriteBurst(aw=aw, w_beats=beats)
