"""The transaction model offered to IP modules.

Masters initiate transactions by issuing requests (command, address, optional
write data); slaves execute them and optionally return a response (status and
optional read data).  This mirrors the AXI/OCP/DTL signal groups the paper
lists and is the unit of work that master and slave shells sequentialize into
messages.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import List, Optional

#: Width of a data word in bits (matches the 32-bit prototype links).
WORD_MASK = 0xFFFFFFFF
#: trans_id is an 8-bit field in the message header (Figure 7).
MAX_TRANS_ID = 0xFF
#: The burst length field is 12 bits wide.
MAX_BURST_WORDS = 0xFFF


class TransactionError(ValueError):
    """Raised for malformed transactions (bad burst length, missing data)."""


class Command(IntEnum):
    """Transaction commands.

    READ and WRITE are the commands the paper's prototype implements; posted
    writes (no acknowledgement), read-linked and write-conditional are listed
    as full-fledged shell extensions (Section 4.2) and are supported by the
    protocol layer so the extension shells can be exercised.
    """

    READ = 0
    WRITE = 1
    WRITE_POSTED = 2
    READ_LINKED = 3
    WRITE_CONDITIONAL = 4
    FLUSH = 5


#: Commands that carry write data in the request message.
WRITE_COMMANDS = (Command.WRITE, Command.WRITE_POSTED, Command.WRITE_CONDITIONAL)
#: Commands for which the slave returns a response message.
RESPONSE_COMMANDS = (Command.READ, Command.WRITE, Command.READ_LINKED,
                     Command.WRITE_CONDITIONAL)


class TransactionStatus(Enum):
    PENDING = "pending"
    ISSUED = "issued"
    COMPLETED = "completed"
    ERROR = "error"


class ResponseError(IntEnum):
    """Error codes carried in the response message header."""

    OK = 0
    DECODE_ERROR = 1
    SLAVE_ERROR = 2
    CONDITIONAL_FAIL = 3
    #: Synthesised locally by the master shell when a transaction exhausts
    #: its retry budget (never carried on the wire).
    TIMEOUT = 4


@dataclass
class TransactionResponse:
    """Result of a transaction execution returned by a slave."""

    error: ResponseError = ResponseError.OK
    read_data: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error == ResponseError.OK


_transaction_ids = itertools.count()


@dataclass
class Transaction:
    """One master-initiated transaction."""

    command: Command
    address: int
    write_data: List[int] = field(default_factory=list)
    read_length: int = 0
    trans_id: Optional[int] = None
    status: TransactionStatus = TransactionStatus.PENDING
    response: Optional[TransactionResponse] = None
    issue_cycle: Optional[int] = None
    complete_cycle: Optional[int] = None
    uid: int = field(default_factory=lambda: next(_transaction_ids))

    def __post_init__(self) -> None:
        self.address &= 0xFFFFFFFF
        self.write_data = [w & WORD_MASK for w in self.write_data]
        if self.command in WRITE_COMMANDS and not self.write_data:
            raise TransactionError(f"{self.command.name} requires write data")
        if self.command not in WRITE_COMMANDS and self.write_data:
            raise TransactionError(f"{self.command.name} must not carry write data")
        if self.command in (Command.READ, Command.READ_LINKED):
            if self.read_length <= 0:
                raise TransactionError("read transactions need read_length >= 1")
            if self.read_length > MAX_BURST_WORDS:
                raise TransactionError(
                    f"read_length {self.read_length} exceeds burst field")
        if len(self.write_data) > MAX_BURST_WORDS:
            raise TransactionError(
                f"write burst of {len(self.write_data)} words exceeds burst field")

    # -------------------------------------------------------------- metadata
    @property
    def expects_response(self) -> bool:
        return self.command in RESPONSE_COMMANDS

    @property
    def burst_length(self) -> int:
        """Number of data words moved by the transaction."""
        if self.command in WRITE_COMMANDS:
            return len(self.write_data)
        return self.read_length

    @property
    def is_write(self) -> bool:
        return self.command in WRITE_COMMANDS

    @property
    def is_read(self) -> bool:
        return self.command in (Command.READ, Command.READ_LINKED)

    # ------------------------------------------------------------ completion
    def complete(self, response: TransactionResponse,
                 cycle: Optional[int] = None) -> None:
        self.response = response
        self.complete_cycle = cycle
        self.status = (TransactionStatus.COMPLETED if response.ok
                       else TransactionStatus.ERROR)

    @property
    def latency_cycles(self) -> Optional[int]:
        if self.issue_cycle is None or self.complete_cycle is None:
            return None
        return self.complete_cycle - self.issue_cycle

    # ------------------------------------------------------------- factories
    @classmethod
    def read(cls, address: int, length: int = 1) -> "Transaction":
        return cls(command=Command.READ, address=address, read_length=length)

    @classmethod
    def write(cls, address: int, data: List[int],
              posted: bool = False) -> "Transaction":
        command = Command.WRITE_POSTED if posted else Command.WRITE
        return cls(command=command, address=address, write_data=list(data))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Transaction({self.command.name}, addr=0x{self.address:08x}, "
                f"burst={self.burst_length}, status={self.status.value})")
