"""Simplified Device Transaction Level (DTL) protocol adapter.

DTL is the Philips on-chip bus protocol the prototype NI exposes (the paper
implements "a simplified version of DTL").  A DTL master drives a command
group (read/write, address, block size), a write-data group and consumes a
read-data group; the slave side mirrors this.  The adapter converts between
DTL signal-group objects and the generic :class:`~repro.protocol.transactions.Transaction`
model used by the master/slave shells, which is exactly the sequentialization
work the DTL shell of Figure 5/6 performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.protocol.transactions import (
    Command,
    ResponseError,
    Transaction,
    TransactionResponse,
)


class DTLCommandType(Enum):
    READ = "read"
    WRITE = "write"


@dataclass
class DTLCommand:
    """The DTL command group: command, address and block size."""

    command: DTLCommandType
    address: int
    block_size: int = 1
    #: Posted writes do not require a write acknowledgement.
    posted: bool = False


@dataclass
class DTLWriteData:
    """The DTL write-data group: one burst of data words with write masks."""

    data: List[int] = field(default_factory=list)
    mask: Optional[List[int]] = None


@dataclass
class DTLReadData:
    """The DTL read-data group returned to the master."""

    data: List[int] = field(default_factory=list)
    error: bool = False


@dataclass
class DTLWriteResponse:
    """The DTL write acknowledgement."""

    error: bool = False


def dtl_to_transaction(command: DTLCommand,
                       write_data: Optional[DTLWriteData] = None) -> Transaction:
    """Convert a DTL command (+ write data) into a generic transaction."""
    if command.command == DTLCommandType.READ:
        return Transaction(command=Command.READ, address=command.address,
                           read_length=command.block_size)
    if write_data is None or not write_data.data:
        raise ValueError("DTL write command requires write data")
    if len(write_data.data) != command.block_size:
        raise ValueError(
            f"DTL block size {command.block_size} does not match "
            f"{len(write_data.data)} write data words")
    cmd = Command.WRITE_POSTED if command.posted else Command.WRITE
    return Transaction(command=cmd, address=command.address,
                       write_data=list(write_data.data))


def transaction_to_dtl(transaction: Transaction) -> DTLCommand:
    """Reconstruct the DTL command group a slave port would observe."""
    if transaction.is_read:
        return DTLCommand(command=DTLCommandType.READ,
                          address=transaction.address,
                          block_size=transaction.read_length)
    return DTLCommand(command=DTLCommandType.WRITE,
                      address=transaction.address,
                      block_size=len(transaction.write_data),
                      posted=transaction.command == Command.WRITE_POSTED)


def response_to_dtl_read(response: TransactionResponse) -> DTLReadData:
    return DTLReadData(data=list(response.read_data),
                       error=not response.ok)


def response_to_dtl_write(response: TransactionResponse) -> DTLWriteResponse:
    return DTLWriteResponse(error=not response.ok)


def dtl_read_to_response(read_data: DTLReadData) -> TransactionResponse:
    error = ResponseError.SLAVE_ERROR if read_data.error else ResponseError.OK
    return TransactionResponse(error=error, read_data=list(read_data.data))


def dtl_write_to_response(write_response: DTLWriteResponse) -> TransactionResponse:
    error = ResponseError.SLAVE_ERROR if write_response.error else ResponseError.OK
    return TransactionResponse(error=error)
