"""Request and response message formats (Figure 7 of the paper).

Messages are the unit the NI shells hand to the NI kernel: the master shell
*sequentializes* a transaction's command, flags, address and write data into a
request message; the slave shell *desequentializes* it, and responses travel
the other way.  Sequentialization reduces the number of wires and simplifies
arbitration (Section 2).

Word layout (32-bit words):

``RequestMessage``
    word 0: ``cmd[31:28] | length[27:16] | flags[15:8] | trans_id[7:0]``
    word 1: ``address``
    words 2..: write data (``length`` words, only for write commands)

``ResponseMessage``
    word 0: ``cmd[31:28] | length[27:16] | error[15:8] | trans_id[7:0]``
    words 1..: read data (``length`` words, only for read commands)

The 8-bit ``trans_id`` doubles as the sequence number of Figure 7: it is
assigned in issue order by the master shell and wraps modulo 256.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

from repro.protocol.transactions import (
    Command,
    MAX_BURST_WORDS,
    MAX_TRANS_ID,
    ResponseError,
    WRITE_COMMANDS,
)

#: Flag bits carried in the request header (Section 4.1 flush bit).
FLAG_FLUSH = 0x01
FLAG_POSTED = 0x02

_WORD_MASK = 0xFFFFFFFF


class MessageError(ValueError):
    """Raised when (de)serializing malformed messages."""


def _check_word(value: int, name: str) -> int:
    if not 0 <= value <= _WORD_MASK:
        raise MessageError(f"{name} 0x{value:x} does not fit in a 32-bit word")
    return value


@dataclass
class RequestMessage:
    """A sequentialized request (master -> slave)."""

    command: Command
    address: int
    write_data: List[int] = field(default_factory=list)
    read_length: int = 0
    flags: int = 0
    trans_id: int = 0

    def __post_init__(self) -> None:
        self.address = _check_word(self.address, "address")
        self.write_data = [_check_word(w, "write data") for w in self.write_data]
        if not 0 <= self.trans_id <= MAX_TRANS_ID:
            raise MessageError(f"trans_id {self.trans_id} exceeds 8 bits")
        if not 0 <= self.flags <= 0xFF:
            raise MessageError(f"flags 0x{self.flags:x} exceed 8 bits")
        if self.length > MAX_BURST_WORDS:
            raise MessageError(f"burst length {self.length} exceeds 12 bits")

    @property
    def length(self) -> int:
        """Burst length carried in the header."""
        if self.command in WRITE_COMMANDS:
            return len(self.write_data)
        return self.read_length

    @property
    def expects_response(self) -> bool:
        return self.command in (Command.READ, Command.WRITE,
                                Command.READ_LINKED, Command.WRITE_CONDITIONAL)

    @property
    def response_length(self) -> int:
        """Number of data words the matching response will carry."""
        if self.command in (Command.READ, Command.READ_LINKED):
            return self.length
        return 0

    @property
    def num_words(self) -> int:
        """Sequentialized size: header + address + write data."""
        return 2 + (len(self.write_data) if self.command in WRITE_COMMANDS else 0)

    def to_words(self) -> List[int]:
        header = ((int(self.command) & 0xF) << 28
                  | (self.length & 0xFFF) << 16
                  | (self.flags & 0xFF) << 8
                  | (self.trans_id & 0xFF))
        words = [header, self.address]
        if self.command in WRITE_COMMANDS:
            words.extend(self.write_data)
        return words

    @staticmethod
    def words_expected(header_word: int) -> int:
        """Total message length implied by the first word."""
        command = Command((header_word >> 28) & 0xF)
        length = (header_word >> 16) & 0xFFF
        if command in WRITE_COMMANDS:
            return 2 + length
        return 2


@dataclass
class ResponseMessage:
    """A sequentialized response (slave -> master)."""

    command: Command
    error: ResponseError = ResponseError.OK
    read_data: List[int] = field(default_factory=list)
    trans_id: int = 0

    def __post_init__(self) -> None:
        self.read_data = [_check_word(w, "read data") for w in self.read_data]
        if not 0 <= self.trans_id <= MAX_TRANS_ID:
            raise MessageError(f"trans_id {self.trans_id} exceeds 8 bits")
        if len(self.read_data) > MAX_BURST_WORDS:
            raise MessageError("read burst exceeds 12-bit length field")

    @property
    def length(self) -> int:
        return len(self.read_data)

    @property
    def num_words(self) -> int:
        return 1 + len(self.read_data)

    @property
    def ok(self) -> bool:
        return self.error == ResponseError.OK

    def to_words(self) -> List[int]:
        header = ((int(self.command) & 0xF) << 28
                  | (self.length & 0xFFF) << 16
                  | (int(self.error) & 0xFF) << 8
                  | (self.trans_id & 0xFF))
        return [header] + list(self.read_data)

    @staticmethod
    def words_expected(header_word: int) -> int:
        length = (header_word >> 16) & 0xFFF
        return 1 + length


Message = Union[RequestMessage, ResponseMessage]


def request_from_words(words: Sequence[int]) -> RequestMessage:
    """Desequentialize a request message (slave shell direction)."""
    if len(words) < 2:
        raise MessageError("request message needs at least header and address")
    header = words[0]
    command = Command((header >> 28) & 0xF)
    length = (header >> 16) & 0xFFF
    flags = (header >> 8) & 0xFF
    trans_id = header & 0xFF
    address = words[1]
    if command in WRITE_COMMANDS:
        data = list(words[2:])
        if len(data) != length:
            raise MessageError(
                f"write request declares {length} data words, got {len(data)}")
        return RequestMessage(command=command, address=address, write_data=data,
                              flags=flags, trans_id=trans_id)
    if len(words) != 2:
        raise MessageError(f"{command.name} request must be exactly 2 words")
    return RequestMessage(command=command, address=address, read_length=length,
                          flags=flags, trans_id=trans_id)


def response_from_words(words: Sequence[int]) -> ResponseMessage:
    """Desequentialize a response message (master shell direction)."""
    if not words:
        raise MessageError("empty response message")
    header = words[0]
    command = Command((header >> 28) & 0xF)
    length = (header >> 16) & 0xFFF
    error = ResponseError((header >> 8) & 0xFF)
    trans_id = header & 0xFF
    data = list(words[1:])
    if len(data) != length:
        raise MessageError(
            f"response declares {length} data words, got {len(data)}")
    return ResponseMessage(command=command, error=error, read_data=data,
                           trans_id=trans_id)
