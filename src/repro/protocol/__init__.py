"""Transaction-based shared-memory protocol layer.

The Aethereal NoC offers IP modules a shared-memory abstraction: masters
issue request messages (read/write commands at an address, possibly carrying
data) and slaves execute them and may return response messages (Section 2).
This package defines the transaction model, the request/response message
formats of Figure 7 (including their sequentialization into 32-bit words),
and thin adapters for the bus protocols the paper names: DTL, AXI and
DTL-MMIO.
"""

from repro.protocol.messages import (
    MessageError,
    RequestMessage,
    ResponseMessage,
    request_from_words,
    response_from_words,
)
from repro.protocol.transactions import (
    Command,
    Transaction,
    TransactionError,
    TransactionResponse,
    TransactionStatus,
)

__all__ = [
    "Command",
    "MessageError",
    "RequestMessage",
    "ResponseMessage",
    "Transaction",
    "TransactionError",
    "TransactionResponse",
    "TransactionStatus",
    "request_from_words",
    "response_from_words",
]
