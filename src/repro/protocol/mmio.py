"""DTL-MMIO: memory-mapped IO transactions used for NoC configuration.

The NIs are configured through configuration ports (CNIP) which offer "a
memory-mapped view on all control registers in the NIs", accessed with normal
read and write transactions (Section 4.3).  This module provides helpers to
build those transactions and a generic register-file abstraction the CNIP
slave executes them against.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.protocol.transactions import (
    Command,
    ResponseError,
    Transaction,
    TransactionResponse,
)


def mmio_write(address: int, value: int, acknowledged: bool = True) -> Transaction:
    """A single-word memory-mapped register write.

    ``acknowledged=False`` produces a posted write, used for all but the last
    write of a configuration sequence; the final write requests an
    acknowledgement "to confirm that the channel has been successfully set up"
    (Section 4.3).
    """
    return Transaction.write(address, [value], posted=not acknowledged)


def mmio_read(address: int) -> Transaction:
    """A single-word memory-mapped register read."""
    return Transaction.read(address, length=1)


class MMIORegisterFile:
    """A register file addressed word-by-word.

    Reads and writes can be backed either by a plain dictionary or by
    callbacks (the NI kernel register file uses callbacks so that register
    writes take effect on channel state immediately).
    """

    def __init__(self,
                 read_handler: Optional[Callable[[int], int]] = None,
                 write_handler: Optional[Callable[[int, int], None]] = None) -> None:
        self._registers: Dict[int, int] = {}
        self._read_handler = read_handler
        self._write_handler = write_handler

    def read(self, address: int) -> int:
        if self._read_handler is not None:
            return self._read_handler(address)
        return self._registers.get(address, 0)

    def write(self, address: int, value: int) -> None:
        if self._write_handler is not None:
            self._write_handler(address, value)
            return
        self._registers[address] = value & 0xFFFFFFFF

    def execute(self, transaction: Transaction) -> TransactionResponse:
        """Execute an MMIO transaction against this register file."""
        if transaction.is_read:
            data = [self.read(transaction.address + offset)
                    for offset in range(transaction.read_length)]
            return TransactionResponse(error=ResponseError.OK, read_data=data)
        if transaction.command in (Command.WRITE, Command.WRITE_POSTED):
            for offset, word in enumerate(transaction.write_data):
                self.write(transaction.address + offset, word)
            return TransactionResponse(error=ResponseError.OK)
        return TransactionResponse(error=ResponseError.DECODE_ERROR)
