"""E4 — Section 2 throughput guarantees: N reserved slots give N * B_i.

A single GT connection is driven at saturation for an increasing number of
reserved slots; the measured delivered payload must scale linearly with the
reservation and stay at or above the analytic guarantee.  The raw link
bandwidth (16 Gbit/s at 500 MHz, Section 5) is reported alongside.
"""

import pytest

from benchmarks.helpers import print_table, run_once
from repro.analysis.guarantees import throughput_bound_words_per_flit_cycle
from repro.analysis.verification import measured_throughput_gbit_s
from repro.design.timing import TimingModel
from repro.ip.traffic import ConstantBitRateTraffic
from repro.testbench import build_gt_be_mix

WARMUP_CYCLES = 200
WINDOW_CYCLES = 600


def measure(slots):
    mix = build_gt_be_mix(num_gt=1, num_be=0, gt_slots=slots,
                          gt_pattern_period=2, burst_words=4,
                          queue_words=16)
    slave_kernel = mix.system.kernel("s0")
    mix.run_flit_cycles(WARMUP_CYCLES)
    before = slave_kernel.stats.counter("words_received").value
    mix.run_flit_cycles(WINDOW_CYCLES)
    after = slave_kernel.stats.counter("words_received").value
    delivered = after - before
    return delivered


def throughput_rows():
    rows = []
    for slots in (1, 2, 4):
        delivered = measure(slots)
        measured = delivered / WINDOW_CYCLES
        bound = throughput_bound_words_per_flit_cycle(slots, 8)
        rows.append({
            "slots_reserved": slots,
            "bound_words_per_flit_cycle": bound,
            "measured_words_per_flit_cycle": measured,
            "measured_gbit_s": measured_throughput_gbit_s(delivered,
                                                          WINDOW_CYCLES),
            "bound_met": measured >= bound * 0.95,
        })
    rows.append({
        "slots_reserved": "raw link",
        "bound_words_per_flit_cycle": 3.0,
        "measured_words_per_flit_cycle": "-",
        "measured_gbit_s": TimingModel().raw_bandwidth_gbit_s,
        "bound_met": True,
    })
    return rows


def test_e4_gt_throughput_scales_with_slots(benchmark):
    rows = run_once(benchmark, throughput_rows)
    print_table("E4: GT throughput vs reserved slots (8-slot table)", rows)
    numeric = [row for row in rows if isinstance(row["slots_reserved"], int)]
    assert all(row["bound_met"] for row in numeric)
    measured = [row["measured_words_per_flit_cycle"] for row in numeric]
    # Linear scaling: 2 slots deliver ~2x of 1 slot, 4 slots ~2x of 2 slots.
    assert measured[1] == pytest.approx(2 * measured[0], rel=0.25)
    assert measured[2] == pytest.approx(2 * measured[1], rel=0.25)
