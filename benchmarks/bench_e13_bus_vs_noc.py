"""E13 — introduction claim (c): NoCs scale better than buses.

The same periodic write workload is offered to (a) a single shared bus with
round-robin arbitration and (b) the Aethereal NoC (one master/slave pair per
IP, all pairs sharing one inter-router link — the worst case for the NoC).
As the number of IP modules grows, the bus serializes everything and its
latency explodes, while the NoC keeps per-pair latency roughly flat until the
shared link itself saturates.
"""

import math

import pytest

from benchmarks.helpers import print_table, run_once
from repro.baselines.bus import SharedBus
from repro.config.connection import (
    ChannelEndpointRef,
    ChannelPairSpec,
    ConnectionSpec,
)
from repro.core.shells.master import MasterShell
from repro.core.shells.point_to_point import PointToPointShell
from repro.core.shells.slave import SlaveShell
from repro.design.generator import build_system
from repro.design.spec import ChannelSpec, NISpec, NoCSpec, PortSpec
from repro.ip.master import TrafficGeneratorMaster
from repro.ip.slave import MemorySlave
from repro.ip.traffic import ConstantBitRateTraffic

PERIOD_PORT_CYCLES = 64
BURST_WORDS = 4
NOC_RUN_FLIT_CYCLES = 1200


def bus_latency(num_masters):
    bus = SharedBus.uniform(num_masters, period_cycles=PERIOD_PORT_CYCLES,
                            burst_words=BURST_WORDS)
    result = bus.simulate(6000)
    return result.mean_latency, result.bus_utilization


def noc_latency(num_masters):
    """Mean write-delivery latency on a NoC sized to the IP count.

    The scalability argument of the paper is that a NoC grows with the
    system: adding IP modules adds routers and links, so per-link load stays
    roughly constant.  The NoC here is a 1 x (N+1) mesh with master i on
    router i talking to the memory on router i+1; every pair therefore has
    its own link budget, unlike the single shared bus.  Latency is the mean
    network delivery latency of the write packets in 500 MHz word cycles.
    """
    cols = num_masters + 1
    ni_specs = []
    for index in range(num_masters):
        ni_specs.append(NISpec(
            name=f"m{index}", router=(0, index),
            ports=[PortSpec(name="p", kind="master", shell="p2p",
                            channels=[ChannelSpec(8, 8)])]))
        ni_specs.append(NISpec(
            name=f"s{index}", router=(0, index + 1),
            ports=[PortSpec(name="p", kind="slave", shell="p2p",
                            channels=[ChannelSpec(8, 8)])]))
    spec = NoCSpec(name="scaling", topology="mesh", rows=1, cols=cols,
                   nis=ni_specs)
    system = build_system(spec)
    configurator = system.functional_configurator()
    masters = []
    for index in range(num_masters):
        master_ni, slave_ni = f"m{index}", f"s{index}"
        conn = PointToPointShell(f"{master_ni}_conn",
                                 system.kernel(master_ni).port("p"),
                                 role="master")
        shell = MasterShell(f"{master_ni}_shell", conn)
        pattern = ConstantBitRateTraffic(period_cycles=PERIOD_PORT_CYCLES,
                                         burst_words=BURST_WORDS,
                                         write=True, posted=True)
        master = TrafficGeneratorMaster(f"{master_ni}_ip", shell,
                                        pattern=pattern)
        clock = system.port_clock(master_ni, "p")
        for component in (master, shell, conn):
            clock.add_component(component)
        slave_conn = PointToPointShell(f"{slave_ni}_conn",
                                       system.kernel(slave_ni).port("p"),
                                       role="slave")
        memory = MemorySlave(f"{slave_ni}_mem")
        slave_shell = SlaveShell(f"{slave_ni}_shell", slave_conn, memory)
        slave_clock = system.port_clock(slave_ni, "p")
        for component in (slave_conn, slave_shell, memory):
            slave_clock.add_component(component)
        configurator.open_connection(system.noc, ConnectionSpec(
            name=f"c{index}", kind="p2p",
            pairs=[ChannelPairSpec(master=ChannelEndpointRef(master_ni, 0),
                                   slave=ChannelEndpointRef(slave_ni, 0))]))
        masters.append((master_ni, slave_ni))
    system.run_flit_cycles(NOC_RUN_FLIT_CYCLES)
    means = []
    for _, slave_ni in masters:
        recorder = system.kernel(slave_ni).stats.latencies[
            "packet_network_latency"]
        means.append(recorder.mean * 3)   # flit cycles -> word cycles
    return sum(means) / len(means)


def scaling_rows():
    rows = []
    for masters in (1, 2, 4, 8):
        bus_mean, bus_util = bus_latency(masters)
        noc_mean = noc_latency(masters)
        rows.append({
            "ip_modules": masters,
            "bus_mean_latency": bus_mean,
            "bus_utilization": bus_util,
            "noc_mean_latency": noc_mean,
            "bus/noc_latency_ratio": bus_mean / noc_mean,
        })
    return rows


def test_e13_noc_scales_better_than_a_bus(benchmark):
    rows = run_once(benchmark, scaling_rows)
    print_table("E13: shared bus vs Aethereal NoC under growing IP count",
                rows)
    bus = [row["bus_mean_latency"] for row in rows]
    noc = [row["noc_mean_latency"] for row in rows]
    assert not any(math.isnan(x) for x in bus + noc)
    # The bus degrades monotonically with the number of masters ...
    assert bus == sorted(bus)
    # ... and its relative degradation from 1 to 8 masters is worse than the
    # NoC's (the crossover the paper's scalability argument relies on).
    bus_growth = bus[-1] / bus[0]
    noc_growth = noc[-1] / noc[0]
    assert bus_growth > noc_growth
