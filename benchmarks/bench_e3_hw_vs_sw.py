"""E3 — Section 5: hardware versus software protocol stack.

The paper's argument for a hardware NI: its latency overhead is 4-10 cycles,
whereas a software implementation needs 47 instructions for packetization
alone (Bhojwani & Mahapatra).  This benchmark reproduces the comparison and
the message-rate ceiling a software stack imposes.
"""

import pytest

from benchmarks.helpers import print_table, run_once
from repro.baselines.software_stack import SoftwareStackModel
from repro.design.timing import LatencyModel, TimingModel


def comparison_rows():
    latency_model = LatencyModel()
    timing = TimingModel()
    rows = []
    for cpi in (1.0, 1.5):
        software = SoftwareStackModel(cycles_per_instruction=cpi)
        for hardware_cycles in (latency_model.min_cycles,
                                latency_model.paper_range[1]):
            comparison = software.compare_with_hardware(hardware_cycles)
            rows.append({
                "sw_cpi": cpi,
                "hw_cycles": hardware_cycles,
                "sw_cycles": comparison["software_cycles"],
                "hw_ns": comparison["hardware_ns"],
                "sw_ns": comparison["software_ns"],
                "sw/hw ratio": comparison["cycle_ratio"],
            })
    rows.append({
        "sw_cpi": 1.0,
        "hw_cycles": "n/a",
        "sw_cycles": "n/a",
        "hw_ns": timing.raw_bandwidth_gbit_s,
        "sw_ns": SoftwareStackModel().max_payload_gbit_s(words_per_message=8),
        "sw/hw ratio": "payload Gbit/s: hw link vs sw ceiling (8-word msgs)",
    })
    return rows


def test_e3_hardware_vs_software_stack(benchmark):
    rows = run_once(benchmark, comparison_rows)
    print_table("E3: hardware NI vs software protocol stack", rows)
    numeric = [row for row in rows if isinstance(row["sw/hw ratio"], float)]
    # The software stack is at least ~5x slower per message in every setting
    # (47 instructions vs at most 10 cycles), matching the paper's claim.
    assert all(row["sw/hw ratio"] >= 4.7 for row in numeric)
    # And the software message-rate ceiling is far below the 16 Gbit/s link.
    software_ceiling = SoftwareStackModel().max_payload_gbit_s(8)
    assert software_ceiling < TimingModel().raw_bandwidth_gbit_s / 3
