"""E5 — Section 2 latency and jitter guarantees.

"The latency bound is given by the waiting time until the reserved slot
arrives and the number of routers data passes"; "jitter is given by the
maximum distance between two slot reservations."  For several slot patterns
the worst-case measured packet latency and jitter are compared against the
analytic bounds.
"""

import math

import pytest

from benchmarks.helpers import print_table, run_once
from repro.analysis.guarantees import GTGuarantees
from repro.ip.traffic import ConstantBitRateTraffic
from repro.testbench import build_point_to_point


def measure(slots):
    tb = build_point_to_point(
        gt=True, request_slots=slots, response_slots=slots,
        pattern=ConstantBitRateTraffic(period_cycles=40, burst_words=2,
                                       posted=True),
        max_transactions=30)
    tb.run_until_done(max_flit_cycles=8000)
    recorder = tb.system.kernel(tb.slave_ni).stats.latencies[
        "packet_network_latency"]
    payload_hist = tb.system.kernel(tb.master_ni).stats.histogram(
        "packet_payload_words")
    packet_flits = max(1, math.ceil((payload_hist.maximum + 1) / 3))
    slot_pattern = tb.slot_assignment[(tb.master_ni, 0)]
    hops = tb.noc.hop_count(tb.master_ni, tb.slave_ni)
    guarantees = GTGuarantees(slot_pattern=slot_pattern, num_slots=8,
                              hops=hops, packet_flits=packet_flits)
    samples = recorder.samples
    return {
        "slots": slots,
        "slot_pattern": tuple(slot_pattern),
        "latency_bound": guarantees.latency_bound,
        "worst_measured_latency": max(samples),
        "mean_measured_latency": sum(samples) / len(samples),
        "jitter_bound": guarantees.jitter_bound,
        "measured_jitter": max(samples) - min(samples),
        "within_bounds": (max(samples) <= guarantees.latency_bound
                          and max(samples) - min(samples)
                          <= guarantees.jitter_bound),
    }


def latency_rows():
    return [measure(slots) for slots in (1, 2, 4)]


def test_e5_latency_and_jitter_bounds_hold(benchmark):
    rows = run_once(benchmark, latency_rows)
    print_table("E5: GT latency/jitter, analytic bound vs measured "
                "(flit cycles)", rows)
    assert all(row["within_bounds"] for row in rows)
    # More reserved slots tighten the worst-case latency bound.
    bounds = [row["latency_bound"] for row in rows]
    assert bounds == sorted(bounds, reverse=True)
    measured = [row["worst_measured_latency"] for row in rows]
    assert measured[-1] <= measured[0]
