"""E12 — Figure 7 message formats and sequentialization overhead.

Reports, for read and write transactions of increasing burst length, the
number of 32-bit words their request and response messages occupy after
sequentialization and the resulting efficiency (payload words over total
words moved), which is what the threshold mechanism of E8 tries to maximize
on the link side.
"""

import pytest

from benchmarks.helpers import print_table, run_once
from repro.protocol.messages import RequestMessage, ResponseMessage
from repro.protocol.transactions import Command


def format_rows():
    rows = []
    for burst in (1, 2, 4, 8, 16, 64):
        write_request = RequestMessage(command=Command.WRITE, address=0x1000,
                                       write_data=list(range(burst)))
        write_ack = ResponseMessage(command=Command.WRITE)
        read_request = RequestMessage(command=Command.READ, address=0x1000,
                                      read_length=burst)
        read_response = ResponseMessage(command=Command.READ,
                                        read_data=list(range(burst)))
        write_total = write_request.num_words + write_ack.num_words
        read_total = read_request.num_words + read_response.num_words
        rows.append({
            "burst_words": burst,
            "write_req_words": write_request.num_words,
            "write_total_words": write_total,
            "write_efficiency": burst / write_total,
            "read_req_words": read_request.num_words,
            "read_total_words": read_total,
            "read_efficiency": burst / read_total,
        })
    return rows


def test_e12_message_format_overhead(benchmark):
    rows = run_once(benchmark, format_rows)
    print_table("E12: sequentialized message sizes (Figure 7 formats)", rows)
    for row in rows:
        burst = row["burst_words"]
        # Write request: header + address + data; acknowledged write adds one
        # response word.  Read: 2-word request, header + data response.
        assert row["write_req_words"] == 2 + burst
        assert row["write_total_words"] == 3 + burst
        assert row["read_req_words"] == 2
        assert row["read_total_words"] == 3 + burst
    # Efficiency approaches 1 for long bursts and is poor for single words,
    # which is why the kernel aggregates messages into longer packets (E8).
    assert rows[0]["write_efficiency"] == pytest.approx(0.25)
    assert rows[-1]["write_efficiency"] > 0.9


def serialization_throughput(burst=16):
    message = RequestMessage(command=Command.WRITE, address=0x0,
                             write_data=list(range(burst)))

    def round_trip():
        from repro.protocol.messages import request_from_words
        return request_from_words(message.to_words())

    return round_trip


def test_e12_serialization_round_trip_speed(benchmark):
    round_trip = serialization_throughput()
    result = benchmark(round_trip)
    assert result.write_data == list(range(16))
