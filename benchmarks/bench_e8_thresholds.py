"""E8 — Section 4.1: the data-threshold mechanism.

"To optimize the NoC utilization, it is preferable to send longer packets.
To achieve this, we implemented a configurable threshold mechanism, which
skips a channel as long as the sendable data is below the threshold."

Sweeping the data threshold for a best-effort stream of small writes shows
the trade-off the mechanism embodies: larger thresholds produce longer
packets (less header overhead on the link) at the price of added latency;
the flush signal bounds the worst case.
"""

import pytest

from benchmarks.helpers import print_table, run_once
from repro.ip.traffic import ConstantBitRateTraffic
from repro.testbench import build_point_to_point


def measure(threshold):
    tb = build_point_to_point(
        data_threshold=threshold,
        queue_words=16,
        pattern=ConstantBitRateTraffic(period_cycles=12, burst_words=2,
                                       posted=True),
        max_transactions=40)
    tb.run_until_done(max_flit_cycles=12000)
    kernel = tb.system.kernel(tb.master_ni).stats
    payload_hist = kernel.histogram("packet_payload_words")
    packets = kernel.counter("be_packets_sent").value
    payload_words = kernel.counter("words_sent").value
    header_overhead = packets / (packets + payload_words)
    latency = tb.master.latency_summary()
    return {
        "data_threshold": threshold,
        "packets": packets,
        "mean_packet_payload": payload_hist.mean,
        "header_overhead": header_overhead,
        "mean_latency": latency["mean"],
        "max_latency": latency["max"],
    }


def threshold_rows():
    return [measure(threshold) for threshold in (1, 4, 8)]


def test_e8_data_threshold_tradeoff(benchmark):
    rows = run_once(benchmark, threshold_rows)
    print_table("E8: packet length / header overhead vs data threshold", rows)
    payloads = [row["mean_packet_payload"] for row in rows]
    overheads = [row["header_overhead"] for row in rows]
    # Larger thresholds produce longer packets and lower header overhead.
    assert payloads == sorted(payloads)
    assert payloads[-1] > payloads[0]
    assert overheads == sorted(overheads, reverse=True)
    # All traffic is still delivered (the threshold only defers, never drops).
    assert all(row["packets"] > 0 for row in rows)


def flush_comparison():
    rows = []
    for use_flush in (False, True):
        tb = build_point_to_point(data_threshold=8, queue_words=16,
                                  max_transactions=0)
        from repro.protocol.transactions import Transaction
        tb.master.issue(Transaction.write(0x0, [1, 2], posted=True))
        tb.run_flit_cycles(100)
        if use_flush:
            tb.master_conn_shell.request_flush(0)
        tb.run_flit_cycles(150)
        rows.append({"flush": use_flush,
                     "words_delivered": tb.memory.memory.writes})
    return rows


def test_e8_flush_prevents_starvation(benchmark):
    rows = run_once(benchmark, flush_comparison)
    print_table("E8b: flush overriding the threshold (2 buffered words, "
                "threshold 8)", rows)
    without, with_flush = rows
    assert without["words_delivered"] == 0       # stuck below the threshold
    assert with_flush["words_delivered"] == 2    # flush pushed them out
