"""E7 — Figure 9: opening a connection over the NoC itself.

Counts the register writes (the paper reports 5 at the master NI and 3 at the
slave NI per master-slave pair), the configuration messages and the cycles
needed to (a) bootstrap the configuration connections and (b) open a
guaranteed B-to-A connection from the centralized configuration module, all
through real DTL-MMIO transactions travelling over the simulated NoC.
"""

import pytest

from benchmarks.helpers import print_table, run_once
from repro.config.connection import (
    ChannelEndpointRef,
    ChannelPairSpec,
    ConnectionSpec,
)
from repro.testbench import build_config_system


def setup_rows():
    tb = build_config_system(num_data_nis=2)
    bootstrap_cycles = tb.run_until_config_idle()
    bootstrap_remote = tb.config_shell.stats.counter("remote_operations").value
    bootstrap_local = tb.config_shell.stats.counter("local_operations").value

    spec = ConnectionSpec(
        name="b_to_a", kind="p2p",
        pairs=[ChannelPairSpec(master=ChannelEndpointRef("ni1", 1),
                               slave=ChannelEndpointRef("ni2", 1),
                               request_gt=True, request_slots=2)])
    handle = tb.manager.open_connection(spec)
    open_cycles = tb.run_until_config_idle()
    per_ni = handle.register_writes_per_ni

    rows = [
        {"step": "bootstrap cfg connections (Fig. 9 steps 1-2, 2 NIs)",
         "register_writes": tb.bootstrap_operations,
         "local_writes": bootstrap_local,
         "noc_messages": bootstrap_remote,
         "flit_cycles": bootstrap_cycles},
        {"step": "open B->A connection (Fig. 9 steps 3-4)",
         "register_writes": handle.register_writes,
         "local_writes": 0,
         "noc_messages": handle.register_writes,
         "flit_cycles": open_cycles},
    ]
    for ni, count in sorted(per_ni.items()):
        rows.append({"step": f"  writes at {ni} (paper: 5 master / 3 slave)",
                     "register_writes": count, "local_writes": "-",
                     "noc_messages": "-", "flit_cycles": "-"})
    return rows, handle


def test_e7_connection_setup_over_the_noc(benchmark):
    rows, handle = run_once(benchmark, setup_rows)
    print_table("E7: connection configuration via the NoC (Figure 9)", rows)
    assert handle.done
    per_ni = handle.register_writes_per_ni
    # Master side carries the extra slot-table writes; both stay in the same
    # small range the paper reports (5 and 3 registers).
    assert 3 <= per_ni["ni2"] <= 6          # slave side
    assert 4 <= per_ni["ni1"] <= 8          # master side (incl. 2 slots)
    assert per_ni["ni1"] >= per_ni["ni2"]
