#!/usr/bin/env python
"""Tracked performance benchmark suite for the simulation engine.

Times three scenarios under both engine modes — activity-driven (idle-skip
clocks, the default) and always-tick (seed semantics) — and writes
``BENCH_PERF.json`` so later PRs can regression-check the perf trajectory:

* ``idle_mesh``      — a 4x4 mesh with 16 NIs and no traffic at all; the
                       worst case for an always-tick engine and the best case
                       for idle-skip.
* ``saturated_mix``  — the E10-style GT+BE mix: several master/slave pairs
                       whose traffic shares one inter-router link.
* ``saturated_grid`` — a 6x6 mesh with 12 master/slave pairs, alternating
                       GT and BE rows and all three BE arbiters; a large
                       fully-busy workload that exercises the kernel/router
                       hot path rather than idle-skip.
* ``saturated_torus``— a 4x4 torus whose GT/BE pairs cross rows, columns
                       and wraparound links; exercises the dimension-ordered
                       torus routing strategy and 5-port routers.
* ``saturated_dram`` — several masters saturating one DRAM-backed memory
                       (bank hotspot, FR-FCFS scheduling) plus an
                       ideal-memory control pair; exercises the repro.mem
                       controller hot path.
* ``bus_vs_noc``     — the E13 comparison workload: a shared-bus baseline
                       simulation plus a 1xN NoC carrying the same periodic
                       writes.

For every scenario the harness verifies that both engine modes produce an
identical result fingerprint (statistics, latencies), then records median
wall time and executed-event counts.

The systems themselves come from the scenario registry
(:mod:`repro.api.scenarios`): the perf suite and the functional tests share
one definition per scenario, so a perf number always describes the same
system a test exercises.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py [--quick] [--output PATH]
                                                      [--only NAME] [--list]

``--quick`` shrinks cycle counts and repeats so the smoke test in the tier-1
suite can exercise the harness in well under a second.  ``--only NAME``
(repeatable) reruns just the named scenarios while iterating — the results
are merged into an existing output file, so the tracked ``BENCH_PERF.json``
stays complete.  ``--list`` prints the scenario names and exits.

``--compare OLD.json`` diffs this run against a previously written report:
for every scenario present in both it prints the wall-time and
executed-event deltas, and the process exits nonzero when any scenario's
median wall time regressed by more than ``--regression-pct`` (default 20%).
Scenarios whose cycle counts differ between the two reports are skipped
(with a note) rather than compared apples-to-oranges.  This is the CI gate
``make check`` runs against the tracked ``BENCH_PERF.json``.

``--profile`` replaces benchmarking with one cProfile pass per selected
scenario and prints the top functions by cumulative time (paths relative to
the repo root), for chasing engine hot spots without a separate harness.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import statistics
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

_REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.api import SystemBuilder, scenarios
from repro.baselines.bus import SharedBus
from repro.ip.traffic import ConstantBitRateTraffic
from repro.sim.clock import always_tick

DEFAULT_OUTPUT = os.path.join(_REPO_ROOT, "BENCH_PERF.json")


def _normalize(obj):
    """Make result fingerprints comparable (NaN == NaN for our purposes)."""
    if isinstance(obj, float):
        return "NaN" if math.isnan(obj) else obj
    if isinstance(obj, dict):
        return {key: _normalize(value) for key, value in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_normalize(value) for value in obj]
    return obj


# --------------------------------------------------------------------------
# Scenarios: each returns (fingerprint, executed_events).  The systems come
# from the shared registry in repro.api.scenarios; this file only decides
# how long to run them and what to fingerprint.
# --------------------------------------------------------------------------
def scenario_idle_mesh(cycles: int) -> Tuple[object, int]:
    """A 4x4 mesh, one NI per router, zero traffic."""
    system = scenarios.build("idle_mesh", rows=4, cols=4)
    system.run_flit_cycles(cycles)
    fingerprint = _normalize({
        "now": system.sim.now,
        "flits": system.noc.total_flits_forwarded(),
    })
    return fingerprint, system.sim.executed_events


def scenario_saturated_mix(cycles: int) -> Tuple[object, int]:
    """GT + BE pairs saturating one shared inter-router link (E10 shape)."""
    system = scenarios.build("saturated_mix")
    system.run_flit_cycles(cycles)
    fingerprint = _normalize({
        name: {
            "latency": system.master(name).latency_summary(),
            "master": system.master(name).stats.summary(),
            "kernel": system.kernel(system.master(name).ni).stats.summary(),
            "slave_kernel": system.kernel(f"s{name[1:]}").stats.summary(),
        }
        for name in sorted(system.masters)
    })
    return fingerprint, system.sim.executed_events


def scenario_saturated_grid(cycles: int) -> Tuple[object, int]:
    """A 6x6 mesh under saturating mixed GT/BE load with all three arbiters.

    Twelve master/slave pairs: two masters per row (columns 0 and 1) talking
    to two slaves (columns 4 and 5), so each row's request traffic shares
    the middle row links.  Even rows run guaranteed-throughput connections
    with reserved slots, odd rows best-effort; the BE arbiters cycle through
    round-robin, weighted round-robin and queue-fill across the NIs.
    """
    system = scenarios.build("saturated_grid")
    system.run_flit_cycles(cycles)
    fingerprint = _normalize({
        "flits": system.noc.total_flits_forwarded(),
        "kernels": {name: kernel.stats.summary()
                    for name, kernel in system.kernels.items()},
        "latencies": {handle.ip.name: handle.latency_summary()
                      for handle in system.masters.values()},
    })
    return fingerprint, system.sim.executed_events


def scenario_saturated_torus(cycles: int) -> Tuple[object, int]:
    """A 4x4 torus under saturating mixed GT/BE load.

    Four master/slave pairs placed diagonally so every dimension-ordered
    route mixes line hops with single-hop wraparound links; exercises the
    torus routing strategy and the higher-degree (5-port) routers.
    """
    system = scenarios.build("saturated_torus")
    system.run_flit_cycles(cycles)
    fingerprint = _normalize({
        "flits": system.noc.total_flits_forwarded(),
        "kernels": {name: kernel.stats.summary()
                    for name, kernel in system.kernels.items()},
        "latencies": {handle.ip.name: handle.latency_summary()
                      for handle in system.masters.values()},
    })
    return fingerprint, system.sim.executed_events


def scenario_saturated_dram(cycles: int) -> Tuple[object, int]:
    """Masters saturating one DRAM-backed memory plus an ideal control pair.

    The DRAM sits behind the same slave shell as an ideal memory but pays
    open-row, bank-conflict and refresh timing, scheduled FR-FCFS; the
    fingerprint includes the controller's row-state counters so scheduling
    changes show up as a result mismatch, not just a timing drift.
    """
    system = scenarios.build("saturated_dram")
    system.run_flit_cycles(cycles)
    fingerprint = _normalize({
        "flits": system.noc.total_flits_forwarded(),
        "kernels": {name: kernel.stats.summary()
                    for name, kernel in system.kernels.items()},
        "latencies": {handle.ip.name: handle.latency_summary()
                      for handle in system.masters.values()},
        "dram": system.memory("dram").dram.service_summary(),
        "memories": {name: {"reads": handle.memory.reads,
                            "writes": handle.memory.writes}
                     for name, handle in system.memories.items()},
    })
    return fingerprint, system.sim.executed_events


def scenario_bus_vs_noc(cycles: int, num_masters: int = 4
                        ) -> Tuple[object, int]:
    """The E13 workload: shared-bus baseline plus the equivalent 1xN NoC."""
    bus = SharedBus.uniform(num_masters, period_cycles=64, burst_words=4)
    bus_result = bus.simulate(max(cycles * 3, 1))

    builder = SystemBuilder("bus_vs_noc").mesh(1, num_masters + 1)
    for index in range(num_masters):
        master_ni, slave_ni = f"m{index}", f"s{index}"
        builder.add_master(master_ni, router=(0, index),
                           ip_name=f"{master_ni}_ip",
                           pattern=ConstantBitRateTraffic(
                               period_cycles=64, burst_words=4,
                               write=True, posted=True))
        builder.add_memory(slave_ni, router=(0, index + 1),
                           ip_name=f"{slave_ni}_mem")
        builder.connect(master_ni, slave_ni, name=f"c{index}")
    system = builder.build()
    system.run_flit_cycles(cycles)
    fingerprint = _normalize({
        "bus": bus_result.as_row(),
        "noc": {name: kernel.stats.summary()
                for name, kernel in system.kernels.items()},
    })
    return fingerprint, system.sim.executed_events


SCENARIOS: Dict[str, Callable[[int], Tuple[object, int]]] = {
    "idle_mesh": scenario_idle_mesh,
    "saturated_mix": scenario_saturated_mix,
    "saturated_grid": scenario_saturated_grid,
    "saturated_torus": scenario_saturated_torus,
    "saturated_dram": scenario_saturated_dram,
    "bus_vs_noc": scenario_bus_vs_noc,
}

#: Flit cycles per scenario: (full, quick).
CYCLES = {
    "idle_mesh": (20000, 1500),
    "saturated_mix": (4000, 400),
    "saturated_grid": (1500, 150),
    "saturated_torus": (2000, 200),
    "saturated_dram": (3000, 300),
    "bus_vs_noc": (2500, 400),
}


# --------------------------------------------------------------------------
# Harness
# --------------------------------------------------------------------------
def _time_runs(func: Callable[[int], Tuple[object, int]], cycles: int,
               repeats: int) -> Dict[str, object]:
    walls = []
    fingerprint = None
    events = 0
    for _ in range(repeats):
        start = time.perf_counter()
        fingerprint, events = func(cycles)
        walls.append(time.perf_counter() - start)
    return {
        "median_wall_s": statistics.median(walls),
        "wall_s_runs": walls,
        "executed_events": events,
        "fingerprint": fingerprint,
    }


def run_suite(quick: bool, repeats: int,
              only: Optional[List[str]] = None) -> Dict[str, object]:
    report: Dict[str, object] = {
        "generated_by": "benchmarks/perf/run_perf.py",
        "quick": quick,
        "repeats": repeats,
        "scenarios": {},
    }
    for name, func in _select(only).items():
        cycles = CYCLES[name][1 if quick else 0]
        active = _time_runs(func, cycles, repeats)
        with always_tick():
            baseline = _time_runs(func, cycles, repeats)
        identical = active["fingerprint"] == baseline["fingerprint"]
        for run in (active, baseline):
            del run["fingerprint"]  # results compared, not archived
        events_ratio = (baseline["executed_events"]
                        / max(active["executed_events"], 1))
        speedup = (baseline["median_wall_s"]
                   / max(active["median_wall_s"], 1e-9))
        report["scenarios"][name] = {
            "flit_cycles": cycles,
            "activity": active,
            "always_tick": baseline,
            "results_identical": identical,
            "event_reduction": events_ratio,
            "wall_speedup": speedup,
        }
        print(f"{name:>14}: events {active['executed_events']:>9} vs "
              f"{baseline['executed_events']:>9} always-tick "
              f"({events_ratio:7.1f}x fewer), wall "
              f"{active['median_wall_s'] * 1e3:8.1f} ms vs "
              f"{baseline['median_wall_s'] * 1e3:8.1f} ms "
              f"({speedup:5.2f}x), identical={identical}")
    return report


def _select(only: Optional[List[str]]) -> Dict[str, Callable]:
    """The scenario subset named by ``--only`` (all when unset)."""
    if not only:
        return dict(SCENARIOS)
    unknown = [name for name in only if name not in SCENARIOS]
    if unknown:
        raise SystemExit(
            f"unknown scenario(s) {unknown} "
            f"(known: {', '.join(SCENARIOS)})")
    return {name: SCENARIOS[name] for name in SCENARIOS if name in only}


def profile_suite(quick: bool, only: Optional[List[str]], top: int) -> None:
    """Run each selected scenario once under cProfile and dump the top-N
    functions by cumulative time, with paths printed relative to the repo
    root so the dump reads as engine modules (``src/repro/...``) rather
    than machine-specific absolute paths."""
    import cProfile
    import pstats

    for name, func in _select(only).items():
        cycles = CYCLES[name][1 if quick else 0]
        profiler = cProfile.Profile()
        profiler.enable()
        func(cycles)
        profiler.disable()
        stats = pstats.Stats(profiler)
        rows = sorted(stats.stats.items(),
                      key=lambda item: item[1][3], reverse=True)
        print(f"\n== profile: {name} ({cycles} flit cycles, "
              f"top {top} by cumulative time) ==")
        print(f"{'ncalls':>10} {'tottime':>9} {'cumtime':>9}  function")
        for (filename, lineno, funcname), data in rows[:top]:
            ncalls, _, tottime, cumtime, _ = data
            if filename.startswith(_REPO_ROOT):
                location = os.path.relpath(filename, _REPO_ROOT)
                where = f"{location}:{lineno}({funcname})"
            elif filename == "~":
                where = funcname  # C builtins
            else:
                where = f"{os.path.basename(filename)}:{lineno}({funcname})"
            print(f"{ncalls:>10} {tottime:>9.3f} {cumtime:>9.3f}  {where}")


def compare_reports(new: Dict[str, object], old: Dict[str, object],
                    regression_pct: float) -> int:
    """Print per-scenario wall/event deltas vs ``old``; count regressions.

    Returns the number of scenarios that regressed beyond ``regression_pct``
    percent.  When both reports ran a scenario for the same number of flit
    cycles, the gated metric is the minimum wall time over the run triplet
    (activity mode) — the noise floor, since interference only ever adds
    time, a single slow repeat cannot fake a regression.  When the
    cycle counts differ (e.g. a ``--quick`` run compared against the tracked
    full-run ``BENCH_PERF.json``), wall times are not comparable — instead
    the deterministic *events per flit cycle* rate is gated: the event count
    scales linearly with cycles for these fixed workloads, so a jump in the
    rate means an engine change (e.g. bursts no longer forming), with none
    of the wall-clock noise of a sub-second quick run.
    """
    new_scenarios = new["scenarios"]
    old_scenarios = old.get("scenarios", {})
    regressions: List[str] = []
    print(f"\n== comparison vs baseline (threshold {regression_pct:.0f}%) ==")
    for name, entry in new_scenarios.items():
        old_entry = old_scenarios.get(name)
        if old_entry is None:
            print(f"{name:>16}: (new scenario, no baseline)")
            continue
        # Gate on the *minimum* of the run triplet, not the median: the
        # minimum is the least noise-contaminated estimate of the true cost
        # (scheduler preemption and cache pollution only ever add time), so
        # a shared-runner hiccup in one repeat cannot fake a regression.
        new_wall = min(entry["activity"].get("wall_s_runs")
                       or [entry["activity"]["median_wall_s"]])
        old_wall = min(old_entry["activity"].get("wall_s_runs")
                       or [old_entry["activity"]["median_wall_s"]])
        new_events = entry["activity"]["executed_events"]
        old_events = old_entry["activity"]["executed_events"]
        new_cycles = entry["flit_cycles"]
        old_cycles = old_entry.get("flit_cycles")
        if old_cycles == new_cycles:
            wall_delta = 100.0 * (new_wall - old_wall) / max(old_wall, 1e-9)
            status = "ok"
            if wall_delta > regression_pct:
                status = "REGRESSION"
                regressions.append(name)
            print(f"{name:>16}: wall {old_wall * 1e3:8.1f} -> "
                  f"{new_wall * 1e3:8.1f} ms ({wall_delta:+6.1f}%), "
                  f"events {old_events:>9} -> {new_events:>9} "
                  f"({new_events - old_events:+d})  [{status}]")
        elif old_events <= 100:
            # Constant-event scenario (idle_mesh: the clocks start, sleep,
            # and nothing else happens regardless of duration) — the event
            # count itself is the cross-regime invariant.
            delta = 100.0 * (new_events - old_events) / max(old_events, 1)
            status = "ok"
            if delta > regression_pct:
                status = "REGRESSION"
                regressions.append(name)
            print(f"{name:>16}: cycles differ ({old_cycles} vs {new_cycles}),"
                  f" gating events {old_events} -> {new_events} "
                  f"({delta:+6.1f}%)  [{status}]")
        else:
            new_rate = new_events / max(new_cycles, 1)
            old_rate = old_events / max(old_cycles or 1, 1)
            rate_delta = 100.0 * (new_rate - old_rate) / max(old_rate, 1e-9)
            status = "ok"
            if rate_delta > regression_pct:
                status = "REGRESSION"
                regressions.append(name)
            print(f"{name:>16}: cycles differ ({old_cycles} vs {new_cycles}),"
                  f" gating events/cycle {old_rate:8.3f} -> {new_rate:8.3f} "
                  f"({rate_delta:+6.1f}%)  [{status}]")
    missing = [name for name in old_scenarios if name not in new_scenarios]
    if missing:
        print(f"  baseline scenarios not in this run: {missing}")
    if regressions:
        print(f"ERROR: wall-time regression over {regression_pct:.0f}% in: "
              f"{regressions}")
    return len(regressions)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small cycle counts / single repeat (smoke test)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per scenario (median is kept)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default: {DEFAULT_OUTPUT})")
    parser.add_argument("--only", action="append", metavar="NAME",
                        help="run only the named scenario (repeatable); "
                             "results are merged into an existing output "
                             "file instead of replacing it")
    parser.add_argument("--list", action="store_true", dest="list_scenarios",
                        help="list scenario names and cycle counts, then exit")
    parser.add_argument("--profile", action="store_true",
                        help="run each selected scenario once under cProfile "
                             "and print the hottest functions instead of "
                             "benchmarking (no output file is written)")
    parser.add_argument("--profile-top", type=int, default=25, metavar="N",
                        help="rows to print per scenario with --profile "
                             "(default 25)")
    parser.add_argument("--compare", metavar="OLD.json", default=None,
                        help="diff this run against a previous report; exit "
                             "nonzero on wall-time regression beyond "
                             "--regression-pct")
    parser.add_argument("--regression-pct", type=float, default=20.0,
                        help="wall-time regression tolerance for --compare "
                             "(percent, default 20)")
    args = parser.parse_args(argv)
    if args.list_scenarios:
        for name in SCENARIOS:
            full, quick = CYCLES[name]
            print(f"{name:>16}: {full} flit cycles ({quick} quick)")
        return 0
    if args.profile:
        profile_suite(quick=args.quick, only=args.only, top=args.profile_top)
        return 0
    repeats = args.repeats if args.repeats else (1 if args.quick else 3)
    report = run_suite(quick=args.quick, repeats=repeats, only=args.only)
    if args.only and os.path.exists(args.output):
        # Partial rerun: keep the other scenarios' tracked numbers — but
        # never mix measurement regimes: a --quick rerun merged into a
        # full-run file (or vice versa) would silently misdescribe every
        # scenario that was not rerun.
        with open(args.output) as handle:
            merged = json.load(handle)
        if (merged.get("quick") != report["quick"]
                or merged.get("repeats") != report["repeats"]):
            print(f"ERROR: {args.output} was generated with "
                  f"quick={merged.get('quick')}, "
                  f"repeats={merged.get('repeats')} but this run uses "
                  f"quick={report['quick']}, repeats={repeats}; refusing to "
                  "merge mixed measurement regimes. Rerun with matching "
                  "flags or a different --output.", file=sys.stderr)
            return 1
        merged["scenarios"].update(report["scenarios"])
        report = merged
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    mismatches = [name for name, entry in report["scenarios"].items()
                  if not entry["results_identical"]]
    if mismatches:
        print(f"ERROR: result mismatch between engine modes in: {mismatches}")
        return 1
    if args.compare:
        with open(args.compare) as handle:
            baseline = json.load(handle)
        if compare_reports(report, baseline, args.regression_pct):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
