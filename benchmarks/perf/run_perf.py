#!/usr/bin/env python
"""Tracked performance benchmark suite for the simulation engine.

Times three scenarios under both engine modes — activity-driven (idle-skip
clocks, the default) and always-tick (seed semantics) — and writes
``BENCH_PERF.json`` so later PRs can regression-check the perf trajectory:

* ``idle_mesh``      — a 4x4 mesh with 16 NIs and no traffic at all; the
                       worst case for an always-tick engine and the best case
                       for idle-skip.
* ``saturated_mix``  — the E10-style GT+BE mix: several master/slave pairs
                       whose traffic shares one inter-router link.
* ``saturated_grid`` — a 6x6 mesh with 12 master/slave pairs, alternating
                       GT and BE rows and all three BE arbiters; a large
                       fully-busy workload that exercises the kernel/router
                       hot path rather than idle-skip.
* ``bus_vs_noc``     — the E13 comparison workload: a shared-bus baseline
                       simulation plus a 1xN NoC carrying the same periodic
                       writes.

For every scenario the harness verifies that both engine modes produce an
identical result fingerprint (statistics, latencies), then records median
wall time and executed-event counts.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py [--quick] [--output PATH]

``--quick`` shrinks cycle counts and repeats so the smoke test in the tier-1
suite can exercise the harness in well under a second.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import statistics
import sys
import time
from typing import Callable, Dict, Tuple

_REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.baselines.bus import SharedBus
from repro.config.connection import (
    ChannelEndpointRef,
    ChannelPairSpec,
    ConnectionSpec,
)
from repro.core.shells.master import MasterShell
from repro.core.shells.point_to_point import PointToPointShell
from repro.core.shells.slave import SlaveShell
from repro.design.generator import build_system
from repro.design.spec import ChannelSpec, NISpec, NoCSpec, PortSpec
from repro.ip.master import TrafficGeneratorMaster
from repro.ip.slave import MemorySlave
from repro.ip.traffic import ConstantBitRateTraffic
from repro.sim.clock import always_tick
from repro.testbench import build_gt_be_mix

DEFAULT_OUTPUT = os.path.join(_REPO_ROOT, "BENCH_PERF.json")


def _normalize(obj):
    """Make result fingerprints comparable (NaN == NaN for our purposes)."""
    if isinstance(obj, float):
        return "NaN" if math.isnan(obj) else obj
    if isinstance(obj, dict):
        return {key: _normalize(value) for key, value in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_normalize(value) for value in obj]
    return obj


# --------------------------------------------------------------------------
# Scenarios: each returns (fingerprint, executed_events)
# --------------------------------------------------------------------------
def _attach_p2p_pair(system, master_ni: str, slave_ni: str,
                     pattern: ConstantBitRateTraffic) -> TrafficGeneratorMaster:
    """Wire a traffic-generating master and a memory slave onto two NIs."""
    conn = PointToPointShell(f"{master_ni}_conn",
                             system.kernel(master_ni).port("p"),
                             role="master")
    shell = MasterShell(f"{master_ni}_shell", conn)
    master = TrafficGeneratorMaster(f"{master_ni}_ip", shell, pattern=pattern)
    clock = system.port_clock(master_ni, "p")
    for component in (master, shell, conn):
        clock.add_component(component)
    slave_conn = PointToPointShell(f"{slave_ni}_conn",
                                   system.kernel(slave_ni).port("p"),
                                   role="slave")
    memory = MemorySlave(f"{slave_ni}_mem")
    slave_shell = SlaveShell(f"{slave_ni}_shell", slave_conn, memory)
    slave_clock = system.port_clock(slave_ni, "p")
    for component in (slave_conn, slave_shell, memory):
        slave_clock.add_component(component)
    return master


def scenario_idle_mesh(cycles: int) -> Tuple[object, int]:
    """A 4x4 mesh, one NI per router, zero traffic."""
    nis = [NISpec(name=f"ni{r}_{c}", router=(r, c),
                  ports=[PortSpec(name="p", kind="master", shell=None,
                                  channels=[ChannelSpec(8, 8)])])
           for r in range(4) for c in range(4)]
    spec = NoCSpec(name="idle_mesh", topology="mesh", rows=4, cols=4, nis=nis)
    system = build_system(spec)
    system.run_flit_cycles(cycles)
    fingerprint = _normalize({
        "now": system.sim.now,
        "flits": system.noc.total_flits_forwarded(),
    })
    return fingerprint, system.sim.executed_events


def scenario_saturated_mix(cycles: int) -> Tuple[object, int]:
    """GT + BE pairs saturating one shared inter-router link (E10 shape)."""
    tb = build_gt_be_mix(num_gt=2, num_be=2, gt_slots=2,
                         gt_pattern_period=8, be_pattern_period=4,
                         burst_words=4)
    tb.run_flit_cycles(cycles)
    fingerprint = _normalize({
        pair.name: {
            "latency": pair.master.latency_summary(),
            "master": pair.master.stats.summary(),
            "kernel": tb.system.kernel(pair.master_ni).stats.summary(),
            "slave_kernel": tb.system.kernel(pair.slave_ni).stats.summary(),
        }
        for pair in tb.pairs
    })
    return fingerprint, tb.system.sim.executed_events


def scenario_saturated_grid(cycles: int) -> Tuple[object, int]:
    """A 6x6 mesh under saturating mixed GT/BE load with all three arbiters.

    Twelve master/slave pairs: two masters per row (columns 0 and 1) talking
    to two slaves (columns 4 and 5), so each row's request traffic shares
    the middle row links.  Even rows run guaranteed-throughput connections
    with reserved slots, odd rows best-effort; the BE arbiters cycle through
    round-robin, weighted round-robin and queue-fill across the NIs.
    """
    rows = cols = 6
    arbiters = ("round_robin", "weighted_round_robin", "queue_fill")
    ni_specs = []
    pair_names = []
    index = 0
    for row in range(rows):
        gt = row % 2 == 0
        for k in range(2):
            master_ni, slave_ni = f"m{row}_{k}", f"s{row}_{k}"
            pair_names.append((master_ni, slave_ni, gt))
            for name, router, kind in ((master_ni, (row, k), "master"),
                                       (slave_ni, (row, cols - 2 + k),
                                        "slave")):
                ni_specs.append(NISpec(
                    name=name, router=router,
                    be_arbiter=arbiters[index % len(arbiters)],
                    ports=[PortSpec(name="p", kind=kind, shell="p2p",
                                    channels=[ChannelSpec(8, 8)])]))
                index += 1
    spec = NoCSpec(name="saturated_grid", topology="mesh", rows=rows,
                   cols=cols, nis=ni_specs)
    system = build_system(spec)
    configurator = system.functional_configurator()
    masters = []
    for master_ni, slave_ni, gt in pair_names:
        pattern = ConstantBitRateTraffic(period_cycles=8 if gt else 4,
                                         burst_words=4, write=True,
                                         posted=True)
        masters.append(_attach_p2p_pair(system, master_ni, slave_ni, pattern))
        configurator.open_connection(system.noc, ConnectionSpec(
            name=f"c_{master_ni}", kind="p2p",
            pairs=[ChannelPairSpec(
                master=ChannelEndpointRef(master_ni, 0),
                slave=ChannelEndpointRef(slave_ni, 0),
                request_gt=gt, request_slots=2 if gt else 0,
                response_gt=gt, response_slots=2 if gt else 0)]))
    system.run_flit_cycles(cycles)
    fingerprint = _normalize({
        "flits": system.noc.total_flits_forwarded(),
        "kernels": {name: kernel.stats.summary()
                    for name, kernel in system.kernels.items()},
        "latencies": {master.name: master.latency_summary()
                      for master in masters},
    })
    return fingerprint, system.sim.executed_events


def scenario_bus_vs_noc(cycles: int, num_masters: int = 4
                        ) -> Tuple[object, int]:
    """The E13 workload: shared-bus baseline plus the equivalent 1xN NoC."""
    bus = SharedBus.uniform(num_masters, period_cycles=64, burst_words=4)
    bus_result = bus.simulate(max(cycles * 3, 1))

    cols = num_masters + 1
    ni_specs = []
    for index in range(num_masters):
        ni_specs.append(NISpec(
            name=f"m{index}", router=(0, index),
            ports=[PortSpec(name="p", kind="master", shell="p2p",
                            channels=[ChannelSpec(8, 8)])]))
        ni_specs.append(NISpec(
            name=f"s{index}", router=(0, index + 1),
            ports=[PortSpec(name="p", kind="slave", shell="p2p",
                            channels=[ChannelSpec(8, 8)])]))
    spec = NoCSpec(name="bus_vs_noc", topology="mesh", rows=1, cols=cols,
                   nis=ni_specs)
    system = build_system(spec)
    configurator = system.functional_configurator()
    for index in range(num_masters):
        master_ni, slave_ni = f"m{index}", f"s{index}"
        pattern = ConstantBitRateTraffic(period_cycles=64, burst_words=4,
                                         write=True, posted=True)
        _attach_p2p_pair(system, master_ni, slave_ni, pattern)
        configurator.open_connection(system.noc, ConnectionSpec(
            name=f"c{index}", kind="p2p",
            pairs=[ChannelPairSpec(master=ChannelEndpointRef(master_ni, 0),
                                   slave=ChannelEndpointRef(slave_ni, 0))]))
    system.run_flit_cycles(cycles)
    fingerprint = _normalize({
        "bus": bus_result.as_row(),
        "noc": {name: kernel.stats.summary()
                for name, kernel in system.kernels.items()},
    })
    return fingerprint, system.sim.executed_events


SCENARIOS: Dict[str, Callable[[int], Tuple[object, int]]] = {
    "idle_mesh": scenario_idle_mesh,
    "saturated_mix": scenario_saturated_mix,
    "saturated_grid": scenario_saturated_grid,
    "bus_vs_noc": scenario_bus_vs_noc,
}

#: Flit cycles per scenario: (full, quick).
CYCLES = {
    "idle_mesh": (20000, 1500),
    "saturated_mix": (4000, 400),
    "saturated_grid": (1500, 150),
    "bus_vs_noc": (2500, 400),
}


# --------------------------------------------------------------------------
# Harness
# --------------------------------------------------------------------------
def _time_runs(func: Callable[[int], Tuple[object, int]], cycles: int,
               repeats: int) -> Dict[str, object]:
    walls = []
    fingerprint = None
    events = 0
    for _ in range(repeats):
        start = time.perf_counter()
        fingerprint, events = func(cycles)
        walls.append(time.perf_counter() - start)
    return {
        "median_wall_s": statistics.median(walls),
        "wall_s_runs": walls,
        "executed_events": events,
        "fingerprint": fingerprint,
    }


def run_suite(quick: bool, repeats: int) -> Dict[str, object]:
    report: Dict[str, object] = {
        "generated_by": "benchmarks/perf/run_perf.py",
        "quick": quick,
        "repeats": repeats,
        "scenarios": {},
    }
    for name, func in SCENARIOS.items():
        cycles = CYCLES[name][1 if quick else 0]
        active = _time_runs(func, cycles, repeats)
        with always_tick():
            baseline = _time_runs(func, cycles, repeats)
        identical = active["fingerprint"] == baseline["fingerprint"]
        for run in (active, baseline):
            del run["fingerprint"]  # results compared, not archived
        events_ratio = (baseline["executed_events"]
                        / max(active["executed_events"], 1))
        speedup = (baseline["median_wall_s"]
                   / max(active["median_wall_s"], 1e-9))
        report["scenarios"][name] = {
            "flit_cycles": cycles,
            "activity": active,
            "always_tick": baseline,
            "results_identical": identical,
            "event_reduction": events_ratio,
            "wall_speedup": speedup,
        }
        print(f"{name:>14}: events {active['executed_events']:>9} vs "
              f"{baseline['executed_events']:>9} always-tick "
              f"({events_ratio:7.1f}x fewer), wall "
              f"{active['median_wall_s'] * 1e3:8.1f} ms vs "
              f"{baseline['median_wall_s'] * 1e3:8.1f} ms "
              f"({speedup:5.2f}x), identical={identical}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small cycle counts / single repeat (smoke test)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per scenario (median is kept)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default: {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats else (1 if args.quick else 3)
    report = run_suite(quick=args.quick, repeats=repeats)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    mismatches = [name for name, entry in report["scenarios"].items()
                  if not entry["results_identical"]]
    if mismatches:
        print(f"ERROR: result mismatch between engine modes in: {mismatches}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
