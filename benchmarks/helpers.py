"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one table/figure-equivalent of the paper
(see DESIGN.md, experiment index) and prints its rows so the numbers can be
copied into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def print_table(title: str, rows: Sequence[Dict[str, object]]) -> None:
    """Print a list of dict rows as an aligned text table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {col: max(len(col), *(len(format_value(row.get(col, "")))
                                   for row in rows))
              for col in columns}
    header = " | ".join(col.ljust(widths[col]) for col in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(" | ".join(format_value(row.get(col, "")).ljust(widths[col])
                         for col in columns))


def run_once(benchmark, func, *args, **kwargs):
    """Run a heavy simulation exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
