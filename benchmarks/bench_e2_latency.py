"""E2 — Section 5 NI latency overhead (4-10 cycles).

Measures the end-to-end latency of a one-word posted write through the full
simulated stack (master shell sequentialization, kernel packetization, NoC
traversal, depacketization, slave shell), subtracts the pure network hop
traversal, and compares the remaining NI-added overhead against the paper's
per-stage breakdown.
"""

import pytest

from benchmarks.helpers import print_table, run_once
from repro.design.timing import LatencyModel
from repro.network.packet import CYCLES_PER_FLIT
from repro.protocol.transactions import Transaction
from repro.testbench import build_point_to_point


def measure_overhead():
    tb = build_point_to_point(max_transactions=0)
    tb.master.issue(Transaction.write(0x0, [1], posted=True))
    tb.run_flit_cycles(300)
    assert tb.memory.memory.writes == 1
    hops = tb.noc.hop_count(tb.master_ni, tb.slave_ni)
    recorder = tb.system.kernel(tb.slave_ni).stats.latencies[
        "packet_network_latency"]
    network_flit_cycles = recorder.maximum
    # The packet spends (hops + 1) flit cycles on links/routers; the rest is
    # NI-kernel alignment and scheduling, reported in 500 MHz word cycles.
    kernel_overhead_words = (network_flit_cycles - (hops + 1)) * CYCLES_PER_FLIT
    model = LatencyModel()
    rows = [{"stage": name, "min_cycles": low, "max_cycles": high}
            for name, (low, high) in model.breakdown().items()]
    rows.append({"stage": "paper total", "min_cycles": model.paper_range[0],
                 "max_cycles": model.paper_range[1]})
    rows.append({"stage": "measured kernel overhead (word cycles)",
                 "min_cycles": kernel_overhead_words,
                 "max_cycles": kernel_overhead_words})
    return rows, kernel_overhead_words, model


def test_e2_ni_latency_overhead(benchmark):
    rows, overhead, model = run_once(benchmark, measure_overhead)
    print_table("E2: NI latency overhead breakdown (cycles @ 500 MHz)", rows)
    # The measured kernel-side overhead must stay within the paper's 4-10
    # cycle envelope (the shell stages are modeled analytically).
    assert 0 <= overhead <= model.paper_range[1]


def round_trip_latency():
    tb = build_point_to_point(max_transactions=0)
    tb.master.issue(Transaction.write(0x10, [1, 2, 3, 4]))
    tb.run_until_done()
    txn = tb.master.completed[0]
    return txn.latency_cycles


def test_e2_acknowledged_write_round_trip(benchmark):
    latency = run_once(benchmark, round_trip_latency)
    print_table("E2b: acknowledged 4-word write round trip",
                [{"metric": "round-trip latency (port cycles @ 500 MHz)",
                  "value": latency}])
    # Request (6 words) + response (1 word) messages, two NI traversals each
    # way and the slave: the round trip stays within a few tens of cycles,
    # i.e. the same order as a bus transaction, as the paper argues.
    assert latency < 100
