"""E6 — Section 3: centralized versus distributed configuration.

The paper opts for centralized configuration for small NoCs (around 10
routers) because it is simpler and cheaper, while acknowledging it can become
a bottleneck for large NoCs.  The timed configuration model reproduces that
trade-off: total configuration time and register-write counts for both models
as the NoC (and the number of connections to open) grows.
"""

import pytest

from benchmarks.helpers import print_table, run_once
from repro.config.manager import ConfigJob, DistributedConfigurationModel
from repro.config.slot_allocation import SlotRequest


def make_jobs(num_connections, hops, num_slots, slots_per_connection=1):
    jobs = []
    for index in range(num_connections):
        # Spread connections over disjoint paths so the comparison isolates
        # the configuration mechanism rather than slot exhaustion.
        links = [(f"r{index}_{h}", f"r{index}_{h + 1}") for h in range(hops)]
        jobs.append(ConfigJob(
            name=f"conn{index}",
            slot_requests=[SlotRequest(f"ni{index}", 0, slots_per_connection,
                                       links)],
            register_writes=8))
    return jobs


def config_rows():
    model = DistributedConfigurationModel(num_slots=16)
    rows = []
    for routers, connections in ((4, 6), (9, 14), (16, 24), (36, 54)):
        hops = max(2, int(routers ** 0.5))
        jobs = make_jobs(connections, hops, 16)
        central = model.run_centralized(jobs)
        rows.append({"routers": routers, "connections": connections,
                     **central.as_row()})
        for ports in (2, 4):
            distributed = model.run_distributed(jobs, ports=ports)
            rows.append({"routers": routers, "connections": connections,
                         **distributed.as_row()})
    return rows


def test_e6_centralized_vs_distributed_configuration(benchmark):
    rows = run_once(benchmark, config_rows)
    print_table("E6: configuration time and cost vs NoC size", rows)
    by_size = {}
    for row in rows:
        by_size.setdefault(row["routers"], {})[
            (row["model"], row["ports"])] = row
    # Centralized always needs fewer register writes (no router slot tables).
    for size, models in by_size.items():
        central = models[("centralized", 1)]
        for key, row in models.items():
            if key[0] == "distributed":
                assert row["register_writes"] > central["register_writes"], size
    # For the largest NoC, distributing configuration over 4 ports is faster
    # than the centralized module (the bottleneck the paper warns about).
    largest = by_size[36]
    assert largest[("distributed", 4)]["cycles"] < \
        largest[("centralized", 1)]["cycles"]
    # Centralized configuration never fails or conflicts.
    assert all(models[("centralized", 1)]["conflicts"] == 0
               for models in by_size.values())
