"""E9 — Section 4.1: credit piggybacking and the credit threshold.

Credits normally ride in the headers of reverse-direction packets; when there
is no reverse data they are sent as empty packets, consuming bandwidth.  The
credit threshold batches them.  This benchmark drives a unidirectional
(posted-write) stream, so every credit must return either in an empty packet
or not at all, and sweeps the credit threshold.
"""

import pytest

from benchmarks.helpers import print_table, run_once
from repro.ip.traffic import ConstantBitRateTraffic
from repro.testbench import build_point_to_point


def measure(credit_threshold):
    tb = build_point_to_point(
        credit_threshold=credit_threshold,
        queue_words=16,
        pattern=ConstantBitRateTraffic(period_cycles=8, burst_words=4,
                                       posted=True),
        max_transactions=60)
    tb.run_until_done(max_flit_cycles=16000)
    slave_kernel = tb.system.kernel(tb.slave_ni).stats
    master_kernel = tb.system.kernel(tb.master_ni).stats
    credit_packets = slave_kernel.counter("credit_only_packets").value
    credits_sent = slave_kernel.counter("credits_sent").value
    data_words = master_kernel.counter("words_sent").value
    reverse_link_flits = tb.noc.links[
        (f"ni:{tb.slave_ni}", "router:(0, 1)")].flits_carried
    return {
        "credit_threshold": credit_threshold,
        "data_words_forward": data_words,
        "credits_returned": credits_sent,
        "credit_only_packets": credit_packets,
        "reverse_link_flits": reverse_link_flits,
        "credit_flits_per_data_word": reverse_link_flits / data_words,
    }


def credit_rows():
    return [measure(threshold) for threshold in (1, 4, 8, 16)]


def test_e9_credit_threshold_reduces_credit_bandwidth(benchmark):
    rows = run_once(benchmark, credit_rows)
    print_table("E9: credit-return overhead vs credit threshold "
                "(unidirectional posted writes)", rows)
    packets = [row["credit_only_packets"] for row in rows]
    overhead = [row["credit_flits_per_data_word"] for row in rows]
    # Batching credits cuts the number of empty credit packets and the
    # reverse-link bandwidth they consume.
    assert packets[0] > packets[-1]
    assert overhead[0] > overhead[-1]
    # Flow-control conservation: every delivered word eventually returns a
    # credit (up to the words still buffered at the end of the run).
    for row in rows:
        assert row["credits_returned"] <= row["data_words_forward"]
        assert row["credits_returned"] >= row["data_words_forward"] - 16
