"""E11 — Figures 3/4: narrowcast shell (shared address space over several
memories) and slave-side multi-connection arbitration.

A single master sees one contiguous address space; the narrowcast shell
splits it over 2/4 memory slaves while keeping responses in transaction
order.  The benchmark reports correctness, the per-memory distribution of
accesses and the transaction latency as the number of slaves grows.
"""

import pytest

from benchmarks.helpers import print_table, run_once
from repro.protocol.transactions import Transaction
from repro.testbench import build_narrowcast


def measure(num_slaves):
    range_words = 256
    tb = build_narrowcast(num_slaves=num_slaves, range_words=range_words,
                          cols=2)
    # Interleaved writes and read-back over the whole shared address space.
    values = {}
    for index in range(24):
        slave = index % num_slaves
        address = slave * range_words * 4 + (index // num_slaves) * 8
        values[address] = [index + 1, index + 2]
        tb.master.issue(Transaction.write(address, values[address]))
    for address in values:
        tb.master.issue(Transaction.read(address, length=2))
    tb.run_until_done(max_flit_cycles=60000)
    reads = [t for t in tb.master.completed if t.is_read]
    correct = all(t.response.read_data == values[t.address] for t in reads)
    ordered = [t.address for t in tb.master.completed][:24] == list(values)
    per_memory = [m.memory.writes for m in tb.memories]
    return {
        "slaves": num_slaves,
        "transactions": len(tb.master.completed),
        "read_back_correct": correct,
        "in_order": ordered,
        "writes_per_memory": tuple(per_memory),
        "mean_latency": tb.master.latency_summary()["mean"],
    }


def narrowcast_rows():
    return [measure(n) for n in (1, 2, 4)]


def test_e11_narrowcast_shared_address_space(benchmark):
    rows = run_once(benchmark, narrowcast_rows)
    print_table("E11: narrowcast connections over 1/2/4 memories", rows)
    assert all(row["read_back_correct"] for row in rows)
    assert all(row["in_order"] for row in rows)
    # The address space really is split: with N slaves every memory sees an
    # equal share of the writes.
    for row in rows:
        writes = row["writes_per_memory"]
        assert max(writes) - min(writes) <= 2
