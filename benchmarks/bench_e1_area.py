"""E1 — Section 5 area figures.

Reproduces the component-by-component area table of the paper's reference
4-port NI instance (kernel 0.11 mm^2, shells, total 0.143 mm^2 in 0.13 um)
from the calibrated area model, and shows how the area scales with queue
depth (the dominant cost, as the paper argues for custom FIFOs).
"""

import pytest

from benchmarks.helpers import print_table, run_once
from repro.design.area import (
    AreaModel,
    REFERENCE_KERNEL_AREA_MM2,
    REFERENCE_TOTAL_AREA_MM2,
)
from repro.design.spec import ChannelSpec, reference_ni_spec


def area_table():
    model = AreaModel()
    comparison = model.paper_comparison()
    rows = [{"component": name,
             "paper_mm2": values["paper_mm2"],
             "model_mm2": values["model_mm2"],
             "error_%": 100.0 * (values["model_mm2"] - values["paper_mm2"])
                        / values["paper_mm2"]}
            for name, values in comparison.items()]
    return rows


def queue_scaling_table():
    model = AreaModel()
    rows = []
    for depth in (4, 8, 16, 32):
        spec = reference_ni_spec()
        for port in spec.ports:
            port.channels = [ChannelSpec(depth, depth)
                             for _ in port.channels]
        report = model.ni_area(spec)
        rows.append({"queue_words_per_fifo": depth,
                     "kernel_mm2": report.kernel_mm2,
                     "total_mm2": report.total_mm2})
    return rows


def test_e1_reference_area_table(benchmark):
    rows = run_once(benchmark, area_table)
    print_table("E1: NI area, paper vs model (mm^2, 0.13 um)", rows)
    by_name = {row["component"]: row for row in rows}
    assert by_name["kernel"]["model_mm2"] == pytest.approx(
        REFERENCE_KERNEL_AREA_MM2, rel=0.01)
    assert by_name["total"]["model_mm2"] == pytest.approx(
        REFERENCE_TOTAL_AREA_MM2, rel=0.01)


def test_e1_area_scaling_with_queue_depth(benchmark):
    rows = run_once(benchmark, queue_scaling_table)
    print_table("E1b: kernel area vs queue depth", rows)
    kernels = [row["kernel_mm2"] for row in rows]
    assert kernels == sorted(kernels)
    # Queues dominate: doubling the queues from 8 to 16 words adds more area
    # than all the shells of the reference instance together.
    assert kernels[2] - kernels[1] > (REFERENCE_TOTAL_AREA_MM2
                                      - REFERENCE_KERNEL_AREA_MM2) / 2
