"""E10 — guaranteed and best-effort traffic sharing the NoC.

The compositionality argument of Sections 1-2: GT connections keep their
throughput and latency regardless of other traffic, while BE traffic absorbs
whatever capacity is left.  Several master/slave pairs share one inter-router
link; the GT slot load is swept and the effect on the BE pair is measured.
"""

import pytest

from benchmarks.helpers import print_table, run_once
from repro.testbench import build_gt_be_mix

RUN_CYCLES = 1500


def measure(num_gt):
    mix = build_gt_be_mix(num_gt=num_gt, num_be=1, gt_slots=2,
                          gt_pattern_period=8, be_pattern_period=10)
    mix.run_flit_cycles(RUN_CYCLES)
    be_pair = mix.be_pairs()[0]
    be_latency = be_pair.master.latency_summary()
    gt_completed = [len(p.master.completed) for p in mix.gt_pairs()]
    link = mix.shared_link()
    return {
        "gt_pairs": num_gt,
        "gt_slots_reserved": 2 * num_gt,
        "gt_transactions_each": (min(gt_completed) if gt_completed else 0),
        "be_transactions": len(be_pair.master.completed),
        "be_mean_latency": be_latency["mean"],
        "be_max_latency": be_latency["max"],
        "link_utilization": link.utilization(RUN_CYCLES),
    }


def mix_rows():
    return [measure(num_gt) for num_gt in (0, 1, 2, 3)]


def test_e10_gt_be_interaction(benchmark):
    rows = run_once(benchmark, mix_rows)
    print_table("E10: BE service vs GT slot load on a shared link", rows)
    # The BE pair keeps working but its latency does not improve as GT load
    # rises (it absorbs the slots GT leaves unused).
    be_latency = [row["be_mean_latency"] for row in rows]
    assert be_latency[-1] >= be_latency[0]
    # Every GT pair keeps (roughly) the same throughput independent of how
    # many other pairs are present: compositionality.
    gt_each = [row["gt_transactions_each"] for row in rows if row["gt_pairs"]]
    assert max(gt_each) - min(gt_each) <= 0.2 * max(gt_each)
    # The shared link is progressively better utilized.
    utilization = [row["link_utilization"] for row in rows]
    assert utilization[-1] > utilization[0]
