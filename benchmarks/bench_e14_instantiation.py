"""E14 — design-time instantiation from the XML description.

The paper generates VHDL for NIs and topology from an XML description; here
the same description drives Python instance generation.  The benchmark checks
the XML round trip of the reference instance and measures generation cost as
the NoC grows (mesh size and NI count), which is the turnaround a designer
iterating on an instance experiences.
"""

import pytest

from benchmarks.helpers import print_table, run_once
from repro.design.generator import build_system
from repro.design.spec import NISpec, NoCSpec, PortSpec, reference_ni_spec, reference_noc_spec
from repro.design.xml_io import from_xml, to_xml


def make_spec(rows, cols):
    nis = []
    for r in range(rows):
        for c in range(cols):
            ni = reference_ni_spec(name=f"ni_{r}_{c}", router=(r, c))
            nis.append(ni)
    return NoCSpec(name=f"mesh_{rows}x{cols}", topology="mesh", rows=rows,
                   cols=cols, nis=nis)


def instantiation_rows():
    rows = []
    for mesh in ((1, 2), (2, 2), (2, 3), (3, 3)):
        spec = make_spec(*mesh)
        xml = to_xml(spec)
        recovered = from_xml(xml)
        system = build_system(recovered)
        rows.append({
            "mesh": f"{mesh[0]}x{mesh[1]}",
            "routers": system.noc.num_routers,
            "nis": len(system.nis),
            "channels_total": sum(k.num_channels
                                  for k in system.kernels.values()),
            "links": system.noc.num_links,
            "xml_bytes": len(xml),
            "round_trip_ok": recovered == spec,
        })
    return rows


def test_e14_xml_round_trip_and_generation(benchmark):
    rows = run_once(benchmark, instantiation_rows)
    print_table("E14: XML-driven instance generation", rows)
    assert all(row["round_trip_ok"] for row in rows)
    assert rows[-1]["routers"] == 9
    assert rows[-1]["channels_total"] == 9 * 8


def test_e14_generation_speed_of_reference_noc(benchmark):
    """Time to build the runnable reference system from its spec."""
    spec = reference_noc_spec()
    system = benchmark(build_system, spec)
    assert set(system.nis) == {"ni0", "ni1"}
